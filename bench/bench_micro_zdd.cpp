// Micro-benchmarks (google-benchmark) of the substrate operations that
// dominate the CC(s) column of the paper's tables: ZDD set algebra, the
// implicit prime recursion, signature-class refinement, explicit reductions
// and one subgradient iteration.
#include <benchmark/benchmark.h>

#include "cover/table_builder.hpp"
#include "gen/pla_gen.hpp"
#include "gen/scp_gen.hpp"
#include "lagrangian/subgradient.hpp"
#include "matrix/reductions.hpp"
#include "primes/implicit_primes.hpp"
#include "util/rng.hpp"
#include "zdd/zdd.hpp"

namespace {

using ucp::Rng;
using ucp::zdd::Var;
using ucp::zdd::Zdd;
using ucp::zdd::ZddManager;

Zdd random_family(ZddManager& mgr, Rng& rng, Var vars, std::size_t sets) {
    Zdd out = mgr.empty();
    for (std::size_t i = 0; i < sets; ++i) {
        std::vector<Var> s;
        for (Var v = 0; v < vars; ++v)
            if (rng.chance(0.3)) s.push_back(v);
        out = mgr.union_(out, mgr.set_of(s));
    }
    return out;
}

void BM_ZddUnion(benchmark::State& state) {
    ZddManager mgr(24);
    Rng rng(1);
    const Zdd a = random_family(mgr, rng, 24, 200);
    const Zdd b = random_family(mgr, rng, 24, 200);
    for (auto _ : state) benchmark::DoNotOptimize(mgr.union_(a, b).id());
}
BENCHMARK(BM_ZddUnion);  // cached-op latency (computed table hit)

void BM_ZddUnionCold(benchmark::State& state) {
    // Fresh manager per iteration: measures table construction + the real
    // recursion, not the computed-table hit.
    Rng rng(1);
    for (auto _ : state) {
        ZddManager mgr(24);
        Rng local(rng());
        const Zdd a = random_family(mgr, local, 24, 120);
        const Zdd b = random_family(mgr, local, 24, 120);
        benchmark::DoNotOptimize(mgr.union_(a, b).id());
    }
}
BENCHMARK(BM_ZddUnionCold);

void BM_ZddProduct(benchmark::State& state) {
    ZddManager mgr(24);
    Rng rng(2);
    const Zdd a = random_family(mgr, rng, 24, 40);
    const Zdd b = random_family(mgr, rng, 24, 40);
    for (auto _ : state) benchmark::DoNotOptimize(mgr.product(a, b).id());
}
BENCHMARK(BM_ZddProduct);

void BM_ZddSupSet(benchmark::State& state) {
    ZddManager mgr(24);
    Rng rng(3);
    const Zdd a = random_family(mgr, rng, 24, 200);
    const Zdd b = random_family(mgr, rng, 24, 50);
    for (auto _ : state) benchmark::DoNotOptimize(mgr.sup_set(a, b).id());
}
BENCHMARK(BM_ZddSupSet);

void BM_ZddMaximal(benchmark::State& state) {
    ZddManager mgr(24);
    Rng rng(4);
    const Zdd a = random_family(mgr, rng, 24, 300);
    for (auto _ : state) benchmark::DoNotOptimize(mgr.maximal(a).id());
}
BENCHMARK(BM_ZddMaximal);

void BM_ImplicitPrimes(benchmark::State& state) {
    ucp::gen::RandomPlaOptions opt;
    opt.num_inputs = static_cast<std::uint32_t>(state.range(0));
    opt.num_outputs = 1;
    opt.num_cubes = opt.num_inputs * 6;
    opt.literal_prob = 0.55;
    opt.seed = 11;
    const auto pla = ucp::gen::random_pla(opt);
    const auto care = pla.on.restricted_to_output(0);
    for (auto _ : state) {
        ZddManager zmgr(2 * opt.num_inputs);
        benchmark::DoNotOptimize(
            ucp::primes::implicit_primes(zmgr, care).prime_count);
    }
}
BENCHMARK(BM_ImplicitPrimes)->Arg(8)->Arg(10)->Arg(12);

void BM_CoveringTableBuild(benchmark::State& state) {
    ucp::gen::RandomPlaOptions opt;
    opt.num_inputs = static_cast<std::uint32_t>(state.range(0));
    opt.num_outputs = 1;
    opt.num_cubes = opt.num_inputs * 6;
    opt.literal_prob = 0.55;
    opt.seed = 13;
    const auto pla = ucp::gen::random_pla(opt);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ucp::cover::build_covering_table(pla).matrix.num_rows());
}
BENCHMARK(BM_CoveringTableBuild)->Arg(8)->Arg(10);

void BM_ExplicitReductions(benchmark::State& state) {
    ucp::gen::RandomScpOptions g;
    g.rows = static_cast<ucp::cov::Index>(state.range(0));
    g.cols = g.rows * 2;
    g.density = 0.05;
    g.seed = 17;
    const auto m = ucp::gen::random_scp(g);
    for (auto _ : state)
        benchmark::DoNotOptimize(ucp::cov::reduce(m).core.num_rows());
}
BENCHMARK(BM_ExplicitReductions)->Arg(100)->Arg(400)->Arg(1000);

void BM_SubgradientAscent(benchmark::State& state) {
    const auto m = ucp::gen::cyclic_matrix(
        static_cast<ucp::cov::Index>(state.range(0)), 5);
    ucp::lagr::SubgradientOptions opt;
    opt.max_iterations = 100;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ucp::lagr::subgradient_ascent(m, opt).lb_fractional);
}
BENCHMARK(BM_SubgradientAscent)->Arg(30)->Arg(100)->Arg(300);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): maps the repo-wide --json[=path]
// flag onto google-benchmark's JSON reporter, so every bench_* binary shares
// the same machine-readable output interface.
int main(int argc, char** argv) {
    std::vector<char*> args;
    std::string out_flag, fmt_flag;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--json", 0) == 0) {
            std::string path = "BENCH_micro_zdd.json";
            if (a.size() > 7 && a[6] == '=') path = a.substr(7);
            out_flag = "--benchmark_out=" + path;
            fmt_flag = "--benchmark_out_format=json";
            args.push_back(out_flag.data());
            args.push_back(fmt_flag.data());
        } else {
            args.push_back(argv[i]);
        }
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
