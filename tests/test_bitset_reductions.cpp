// Property test for the bit-packed dominance kernel: on random matrices the
// kOn and kOff paths must produce identical reductions (same essential
// columns, same core, same maps, same pass counts) — the bitset path is a
// drop-in speedup, never a semantic change. Also covers BitMatrix itself
// and the kAuto density switch.
#include <gtest/gtest.h>

#include <algorithm>

#include "gen/scp_gen.hpp"
#include "matrix/bit_matrix.hpp"
#include "matrix/reductions.hpp"
#include "util/rng.hpp"

namespace {

using ucp::cov::BitMatrix;
using ucp::cov::BitsetMode;
using ucp::cov::CoverMatrix;
using ucp::cov::Index;
using ucp::cov::ReduceOptions;

ucp::cov::ReduceResult run(const CoverMatrix& m, BitsetMode mode,
                           const std::vector<Index>& fixed = {}) {
    ReduceOptions opt;
    opt.use_bitset = mode;
    return ucp::cov::reduce(m, fixed, opt);
}

void expect_same(const ucp::cov::ReduceResult& a,
                 const ucp::cov::ReduceResult& b, std::uint64_t seed) {
    EXPECT_EQ(a.essential_cols, b.essential_cols) << "seed " << seed;
    EXPECT_EQ(a.fixed_cost, b.fixed_cost) << "seed " << seed;
    EXPECT_EQ(a.core_col_map, b.core_col_map) << "seed " << seed;
    EXPECT_EQ(a.core_row_map, b.core_row_map) << "seed " << seed;
    EXPECT_EQ(a.rows_removed_dominance, b.rows_removed_dominance)
        << "seed " << seed;
    EXPECT_EQ(a.cols_removed_dominance, b.cols_removed_dominance)
        << "seed " << seed;
    EXPECT_EQ(a.passes, b.passes) << "seed " << seed;
    ASSERT_EQ(a.core.num_rows(), b.core.num_rows()) << "seed " << seed;
    ASSERT_EQ(a.core.num_cols(), b.core.num_cols()) << "seed " << seed;
    for (Index i = 0; i < a.core.num_rows(); ++i)
        EXPECT_EQ(a.core.row(i), b.core.row(i)) << "seed " << seed;
    for (Index j = 0; j < a.core.num_cols(); ++j)
        EXPECT_EQ(a.core.cost(j), b.core.cost(j)) << "seed " << seed;
}

TEST(BitsetReductions, MatchesSortedVectorKernelOnRandomMatrices) {
    ucp::Rng seeds(0xb175);
    for (int trial = 0; trial < 40; ++trial) {
        ucp::gen::RandomScpOptions g;
        g.rows = 10 + trial % 50;
        g.cols = 8 + (trial * 3) % 70;
        g.density = 0.03 + 0.015 * (trial % 20);
        g.min_cost = 1;
        g.max_cost = 1 + trial % 5;
        g.seed = seeds();
        const CoverMatrix m = ucp::gen::random_scp(g);

        const auto off = run(m, BitsetMode::kOff);
        const auto on = run(m, BitsetMode::kOn);
        EXPECT_FALSE(off.used_bitset_kernel);
        EXPECT_TRUE(on.used_bitset_kernel || on.passes == 0);
        expect_same(off, on, g.seed);
    }
}

TEST(BitsetReductions, MatchesWithFixedColumns) {
    ucp::Rng seeds(0xb176);
    for (int trial = 0; trial < 15; ++trial) {
        ucp::gen::RandomScpOptions g;
        g.rows = 25;
        g.cols = 40;
        g.density = 0.12;
        g.seed = seeds();
        const CoverMatrix m = ucp::gen::random_scp(g);
        const std::vector<Index> fixed{static_cast<Index>(trial % g.cols),
                                       static_cast<Index>((trial * 7) % g.cols)};
        expect_same(run(m, BitsetMode::kOff, fixed),
                    run(m, BitsetMode::kOn, fixed), g.seed);
    }
}

TEST(BitsetReductions, AutoSwitchesOnDensity) {
    ucp::gen::RandomScpOptions g;
    g.rows = 60;
    g.cols = 60;
    g.seed = 99;

    g.density = 0.30;  // far above the 0.02 default threshold
    const auto dense = run(ucp::gen::random_scp(g), BitsetMode::kAuto);
    EXPECT_TRUE(dense.used_bitset_kernel);

    ReduceOptions sparse_opt;
    sparse_opt.use_bitset = BitsetMode::kAuto;
    sparse_opt.bitset_density_threshold = 0.9;  // force the sorted path
    const auto sparse =
        ucp::cov::reduce(ucp::gen::random_scp(g), {}, sparse_opt);
    EXPECT_FALSE(sparse.used_bitset_kernel);
}

TEST(BitsetReductions, DominanceSkipFlagAndCounter) {
    ucp::gen::RandomScpOptions g;
    g.rows = 30;
    g.cols = 30;
    g.density = 0.2;
    g.seed = 5;
    const CoverMatrix m = ucp::gen::random_scp(g);

    ReduceOptions opt;
    opt.max_dominance_rows = 1;  // guaranteed to trip the safety valve
    opt.max_dominance_cols = 1;
    const auto res = ucp::cov::reduce(m, {}, opt);
    EXPECT_TRUE(res.dominance_skipped);
    EXPECT_EQ(res.rows_removed_dominance, 0u);
    EXPECT_EQ(res.cols_removed_dominance, 0u);

    const auto normal = ucp::cov::reduce(m);
    EXPECT_FALSE(normal.dominance_skipped);
}

TEST(BitMatrix, BasicOperations) {
    BitMatrix b(3, 130);  // forces 3 words per row
    b.set(0, 0);
    b.set(0, 64);
    b.set(0, 129);
    b.assign_row(1, std::vector<Index>{0, 64});
    EXPECT_TRUE(b.test(0, 64));
    EXPECT_FALSE(b.test(0, 63));
    EXPECT_EQ(b.popcount(0), 3u);
    EXPECT_EQ(b.popcount(1), 2u);
    EXPECT_EQ(b.popcount(2), 0u);

    EXPECT_TRUE(b.subset(1, 0));   // {0,64} ⊆ {0,64,129}
    EXPECT_FALSE(b.subset(0, 1));
    EXPECT_TRUE(b.subset(2, 1));   // ∅ ⊆ anything
    EXPECT_TRUE(b.subset(0, 0));   // reflexive

    b.reset(2, 70);  // shrink: must clear old contents
    EXPECT_EQ(b.popcount(0), 0u);
    b.set(0, 69);
    EXPECT_TRUE(b.test(0, 69));
}

TEST(BitMatrix, SubsetAgreesWithReferenceOnRandomSets) {
    ucp::Rng rng(0xbeef);
    for (int trial = 0; trial < 200; ++trial) {
        const Index universe = 1 + static_cast<Index>(rng() % 200);
        std::vector<Index> a, b;
        for (Index v = 0; v < universe; ++v) {
            if (rng.chance(0.3)) a.push_back(v);
            if (rng.chance(0.3)) b.push_back(v);
        }
        BitMatrix bits(2, universe);
        bits.assign_row(0, a);
        bits.assign_row(1, b);

        const bool ref = std::includes(b.begin(), b.end(), a.begin(), a.end());
        EXPECT_EQ(bits.subset(0, 1), ref) << "trial " << trial;
    }
}

}  // namespace
