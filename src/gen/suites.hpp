// The benchmark suites: named synthetic stand-ins for the paper's Berkeley
// PLA categories (DESIGN.md §2 documents the substitution). Instance names
// follow the paper's tables so the bench output lines up row-for-row:
//   * easy_cyclic_suite()      — 49 instances (the paper's "easy cyclic");
//   * difficult_cyclic_suite() — bench1, ex5, exam, max1024, prom2, t1, test4;
//   * challenging_suite()      — ex1010, ex4, ibm, jbp, misg, mish, misj,
//                                pdc, shift, soar.pla, test2, test3, ti,
//                                ts10, x2dn, xparc.
// Each instance is deterministic (fixed generator + seed) and sized for
// laptop-scale runs; the categories preserve the structural property that
// made the originals interesting (see the per-family comments).
#pragma once

#include <string>
#include <vector>

#include "matrix/sparse_matrix.hpp"
#include "pla/pla_io.hpp"

namespace ucp::gen {

struct SuiteEntry {
    std::string name;
    pla::Pla pla;
};

/// 49 small instances whose cyclic cores are solvable exactly in milliseconds.
std::vector<SuiteEntry> easy_cyclic_suite();

/// 7 instances with dense, non-trivial cyclic cores where plain greedy loses
/// several products (the paper's Table 1 / Table 3 rows).
std::vector<SuiteEntry> difficult_cyclic_suite();

/// 16 instances with large prime counts relative to their size
/// (the paper's Table 2 / Table 4 rows).
std::vector<SuiteEntry> challenging_suite();

/// A suite member that is a raw covering matrix rather than a PLA — the
/// unicost set-cover family enters the pipeline after the logic phases.
struct MatrixSuiteEntry {
    std::string name;
    cov::CoverMatrix matrix;
};

/// The unicost set-cover workload family (bench_portfolio): OR-Library-style
/// random unicost instances (`uNNNxMMMkK`, scp_gen::unicost_scp), Steiner
/// triple systems (`stsN`, scp_gen::steiner_triple_cover) and hard circulants
/// (`cycN.K`, scp_gen::cyclic_matrix). All unit costs, all with large cyclic
/// cores — the regime where local search beats constructive fixing.
std::vector<MatrixSuiteEntry> unicost_suite();

/// Looks an instance up by name across all three suites. Returns kBadInput
/// (leaving `out` untouched) for an unknown name.
Status try_instance_by_name(const std::string& name, pla::Pla& out);

/// Throwing wrapper: BadInputError (std::invalid_argument) if unknown.
pla::Pla instance_by_name(const std::string& name);

}  // namespace ucp::gen
