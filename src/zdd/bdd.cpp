#include "zdd/bdd.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "util/stats.hpp"
#include "util/trace.hpp"

namespace ucp::zdd {

namespace {
constexpr std::size_t kInitialTable = 1u << 12;
}  // namespace

BddManager::BddManager(std::uint32_t num_vars, const DdOptions& options)
    : num_vars_(num_vars),
      table_(kInitialTable),
      cache_(options.cache_entries, options.max_cache_entries),
      governor_(options.governor),
      mem_(options.governor != nullptr ? options.governor->memory()
                                       : MemoryBudget::process_default()) {
    UCP_REQUIRE(num_vars < kBddTermVar, "variable count out of range");
    nodes_.resize(2);
    nodes_[0] = {kBddTermVar, 0, 0};
    nodes_[1] = {kBddTermVar, 1, 1};
    sync_memory();
}

BddManager::~BddManager() { flush_stats(); }

void BddManager::flush_stats() noexcept {
    const CacheStats cs = cache_stats();
    stats::counter("bdd.cache_hits").add(cs.hits - cache_flushed_.hits);
    stats::counter("bdd.cache_misses").add(cs.misses - cache_flushed_.misses);
    stats::counter("bdd.cache_resizes").add(cs.resizes - cache_flushed_.resizes);
    cache_flushed_ = cs;
}

BddId BddManager::make(std::uint32_t v, BddId lo, BddId hi) {
    if (lo == hi) return lo;  // BDD reduction rule
    UCP_ASSERT(v < num_vars_);
    UCP_ASSERT(var_of(lo) > v && var_of(hi) > v);

    std::size_t slot;
    if (const BddId found = table_.find(nodes_, v, lo, hi, slot)) return found;
    if (governor_ != nullptr)
        throw_if_error(governor_->charge_node(), "bdd arena");
    const BddId id = static_cast<BddId>(nodes_.size());
    nodes_.push_back({v, lo, hi});
    table_.insert(nodes_, slot, id);
    if (mem_.governed()) sync_memory();
    return id;
}

std::size_t BddManager::footprint_bytes() const noexcept {
    return nodes_.capacity() * sizeof(Node) + table_.memory_bytes() +
           cache_.memory_bytes();
}

void BddManager::sync_memory() {
    if (!mem_.governed() || mem_.sync(footprint_bytes())) return;
    cache_.clamp_growth();
    for (;;) {
        const std::size_t freed = cache_.shed();
        if (freed > 0) {
            stats::counter("mem.cache_sheds").add();
            TRACE_INSTANT("mem.stage1_cache_shed");
        }
        if (mem_.sync(footprint_bytes())) return;
        if (freed == 0) break;
    }
    stats::counter("mem.dd_trips").add();
    TRACE_INSTANT("mem.stage3_dd_trip");
    throw ResourceError(Status::kNodeBudget, "bdd arena: memory budget exhausted");
}

BddId BddManager::var(std::uint32_t v) {
    UCP_REQUIRE(v < num_vars_, "variable out of range");
    return make(v, kBddFalse, kBddTrue);
}

BddId BddManager::nvar(std::uint32_t v) {
    UCP_REQUIRE(v < num_vars_, "variable out of range");
    return make(v, kBddTrue, kBddFalse);
}

BddId BddManager::and_(BddId a, BddId b) { return apply(Op::kAnd, a, b); }
BddId BddManager::or_(BddId a, BddId b) { return apply(Op::kOr, a, b); }
BddId BddManager::xor_(BddId a, BddId b) { return apply(Op::kXor, a, b); }

BddId BddManager::apply(Op op, BddId a, BddId b) {
    // Terminal cases.
    switch (op) {
        case Op::kAnd:
            if (a == kBddFalse || b == kBddFalse) return kBddFalse;
            if (a == kBddTrue) return b;
            if (b == kBddTrue) return a;
            if (a == b) return a;
            break;
        case Op::kOr:
            if (a == kBddTrue || b == kBddTrue) return kBddTrue;
            if (a == kBddFalse) return b;
            if (b == kBddFalse) return a;
            if (a == b) return a;
            break;
        case Op::kXor:
            if (a == b) return kBddFalse;
            if (a == kBddFalse) return b;
            if (b == kBddFalse) return a;
            if (a == kBddTrue) return not_(b);
            if (b == kBddTrue) return not_(a);
            break;
        default:
            UCP_ASSERT(false);
    }
    if (a > b) std::swap(a, b);  // all three ops are commutative

    BddId cached;
    const std::uint64_t key = dd_cache_key(static_cast<std::uint8_t>(op), a, b);
    if (cache_.lookup(key, cached)) return cached;

    const std::uint32_t va = var_of(a), vb = var_of(b);
    const std::uint32_t v = std::min(va, vb);
    const BddId a0 = va == v ? nodes_[a].lo : a;
    const BddId a1 = va == v ? nodes_[a].hi : a;
    const BddId b0 = vb == v ? nodes_[b].lo : b;
    const BddId b1 = vb == v ? nodes_[b].hi : b;
    cached = make(v, apply(op, a0, b0), apply(op, a1, b1));
    cache_store(key, cached);
    return cached;
}

BddId BddManager::not_(BddId a) { return not_rec(a); }

BddId BddManager::not_rec(BddId a) {
    if (a == kBddFalse) return kBddTrue;
    if (a == kBddTrue) return kBddFalse;
    BddId cached;
    const std::uint64_t key =
        dd_cache_key(static_cast<std::uint8_t>(Op::kNot), a, a);
    if (cache_.lookup(key, cached)) return cached;
    const BddId r =
        make(nodes_[a].var, not_rec(nodes_[a].lo), not_rec(nodes_[a].hi));
    cache_store(key, r);
    return r;
}

BddId BddManager::cofactor(BddId f, std::uint32_t v, bool value) {
    UCP_REQUIRE(v < num_vars_, "variable out of range");
    return cofactor_rec(f, v, value);
}

BddId BddManager::cofactor_rec(BddId f, std::uint32_t v, bool value) {
    const std::uint32_t vf = var_of(f);
    if (vf > v) return f;  // f does not depend on v above this point
    if (vf == v) return value ? nodes_[f].hi : nodes_[f].lo;
    const Op op = value ? Op::kCof1 : Op::kCof0;
    BddId cached;
    const std::uint64_t key =
        dd_cache_key(static_cast<std::uint8_t>(op), f, static_cast<BddId>(v));
    if (cache_.lookup(key, cached)) return cached;
    const BddId r = make(vf, cofactor_rec(nodes_[f].lo, v, value),
                         cofactor_rec(nodes_[f].hi, v, value));
    cache_store(key, r);
    return r;
}

double BddManager::sat_count(BddId f) const {
    // count(n) = number of satisfying assignments of the sub-function over the
    // variables strictly below var_of(n)'s level; scale at the root.
    std::unordered_map<BddId, double> memo;
    const std::function<double(BddId)> rec = [&](BddId n) -> double {
        if (n == kBddFalse) return 0.0;
        if (n == kBddTrue) return 1.0;
        const auto it = memo.find(n);
        if (it != memo.end()) return it->second;
        const auto gap = [&](BddId child) {
            const std::uint32_t cv =
                child < 2 ? num_vars_ : nodes_[child].var;
            return static_cast<double>(cv - nodes_[n].var - 1);
        };
        const double c = rec(nodes_[n].lo) * std::pow(2.0, gap(nodes_[n].lo)) +
                         rec(nodes_[n].hi) * std::pow(2.0, gap(nodes_[n].hi));
        memo.emplace(n, c);
        return c;
    };
    const std::uint32_t root_var = f < 2 ? num_vars_ : nodes_[f].var;
    return rec(f) * std::pow(2.0, static_cast<double>(root_var));
}

}  // namespace ucp::zdd
