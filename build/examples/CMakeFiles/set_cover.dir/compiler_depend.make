# Empty compiler generated dependencies file for set_cover.
# This may be replaced when dependencies are built.
