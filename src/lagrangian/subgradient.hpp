// Subgradient ascent on the primal and dual Lagrangian relaxations
// (paper §3.1–§3.3).
//
// Primal side:  (LP)  min c̃'p + λ'e,  0 ≤ p ≤ e,  c̃ = c − A'λ
//   optimal p*_j = [c̃_j ≤ 0];  z_LP(λ) = Σ_j min(c̃_j, 0) + Σ_i λ_i ≤ z*_P
//   λ is updated with formula (2): step · subgradient · (UB − z)/‖s‖².
//
// Dual side:    (LD)  max ẽ'm + µ'c,  0 ≤ m ≤ c̄,  ẽ = e − Aµ
//   optimal m*_i = c̄_i·[ẽ_i > 0];  w_LD(µ) = Σ_i max(ẽ_i,0)·c̄_i + µ'c ≥ z*_P
//   µ is driven *down* towards z*_P by the symmetric subgradient step.
//
// Each side feeds the other: w_LD improves the UB used in (2), z_LP improves
// the target used for µ. The iteration also runs the greedy Lagrangian
// heuristics periodically to improve the incumbent, and applies the
// Lagrangian penalty tests (§3.6) through the penalties module.
#pragma once

#include <cstdint>
#include <vector>

#include "lagrangian/greedy_heuristics.hpp"
#include "lagrangian/workspace.hpp"
#include "matrix/sparse_matrix.hpp"
#include "util/budget.hpp"

namespace ucp::lagr {

struct SubgradientOptions {
    double t0 = 2.0;           ///< initial step coefficient t_k
    double t_min = 0.005;      ///< stop when t_k < t_min (paper §3.2)
    int halve_after = 15;      ///< N_t: halve t_k after this many non-improving steps
    double delta = 1e-3;       ///< stop when UB − z_λ < δ (relative)
    int max_iterations = 600;
    int heuristic_period = 15; ///< run the greedy heuristics every k iterations
    bool use_dual_lagrangian = true;  ///< maintain µ via (LD); off = primal only
    bool integer_costs = true;       ///< enables the ⌈LB⌉ = z_best optimality proof
    bool record_trace = false;       ///< fill SubgradientResult::trace
    /// Optional resource governor. Each iteration is charged against it; a
    /// trip (deadline/cancel/iteration cap) breaks the loop and the result
    /// carries the best-so-far incumbent + bound with the trip Status. Not
    /// owned; nullptr = ungoverned (bit-identical to the pre-governor code).
    Budget* governor = nullptr;
};

/// One iteration snapshot (for convergence plots / diagnostics).
struct SubgradientTracePoint {
    int iteration = 0;
    double z_lambda = 0.0;   ///< z_LP(λ_k), the oscillating Lagrangian value
    double lb_best = 0.0;    ///< best bound so far (monotone)
    double w_ld = 0.0;       ///< dual-Lagrangian value w_LD(µ_k) (0 if off)
    cov::Cost incumbent = 0; ///< best feasible solution value so far
    double step = 0.0;       ///< current step coefficient t_k
};

struct SubgradientResult {
    std::vector<double> lambda;  ///< best primal multipliers found
    std::vector<double> mu;      ///< best dual-Lagrangian multipliers (column side)
    double lb_fractional = 0.0;  ///< best z_LP(λ) seen
    cov::Cost lb = 0;            ///< ⌈lb_fractional⌉ for integer costs
    std::vector<cov::Index> best_solution;  ///< best feasible solution found
    cov::Cost best_cost = 0;
    std::vector<double> lagrangian_costs;  ///< c̃ at the best λ
    double w_ld_best = 0.0;  ///< best (lowest) dual-Lagrangian value ≥ z*_P
    int iterations = 0;
    bool proved_optimal = false;  ///< z_best == ⌈LB⌉
    Status status = Status::kOk;  ///< non-kOk when a governor trip ended the run
    std::vector<SubgradientTracePoint> trace;  ///< when opt.record_trace
};

/// Runs the coupled subgradient scheme on covering matrix `a`.
/// `lambda0` warm-starts λ (empty = dual-ascent initialisation, §3.3);
/// `mu0` warm-starts µ (empty = indicator of a greedy primal solution);
/// `incumbent` + `incumbent_cost` seed the upper bound when available.
///
/// `Matrix` is CoverMatrix or SubMatrix. On a live view, λ/µ and every
/// returned vector stay base-indexed (dead slots frozen / never read) and
/// the floating-point trajectory is bit-identical to running on the
/// compacted matrix. All per-iteration scratch lives in `ws`: after the
/// workspace has seen the largest core once, iterations perform zero heap
/// allocations (pinned by the "lagr.workspace_allocs" counter).
template <class Matrix>
SubgradientResult subgradient_ascent(const Matrix& a, LagrangianWorkspace& ws,
                                     const SubgradientOptions& opt = {},
                                     std::vector<double> lambda0 = {},
                                     std::vector<double> mu0 = {},
                                     std::vector<cov::Index> incumbent = {});

/// Convenience overload with a throwaway workspace.
SubgradientResult subgradient_ascent(const cov::CoverMatrix& a,
                                     const SubgradientOptions& opt = {},
                                     std::vector<double> lambda0 = {},
                                     std::vector<double> mu0 = {},
                                     std::vector<cov::Index> incumbent = {});

}  // namespace ucp::lagr
