#include "primes/implicit_primes.hpp"

#include <unordered_map>

#include "util/trace.hpp"
#include "zdd/zdd_cubes.hpp"

namespace ucp::primes {

using zdd::BddId;
using zdd::BddManager;
using zdd::NodeId;
using zdd::Zdd;
using zdd::ZddManager;

zdd::BddId cover_to_bdd(BddManager& bmgr, const pla::Cover& cover) {
    const pla::CubeSpace& s = cover.space();
    UCP_REQUIRE(s.num_outputs == 0, "cover_to_bdd requires an input-only cover");
    UCP_REQUIRE(s.num_inputs <= bmgr.num_vars(), "BDD manager too small");

    BddId f = bmgr.bfalse();
    for (const auto& c : cover) {
        // Build the cube AND from the highest variable down so intermediate
        // BDDs stay small.
        BddId cube = bmgr.btrue();
        for (std::uint32_t i = s.num_inputs; i-- > 0;) {
            switch (c.in(s, i)) {
                case pla::Lit::kZero:
                    cube = bmgr.and_(bmgr.nvar(i), cube);
                    break;
                case pla::Lit::kOne:
                    cube = bmgr.and_(bmgr.var(i), cube);
                    break;
                case pla::Lit::kDontCare:
                    break;
                case pla::Lit::kEmpty:
                    cube = bmgr.bfalse();
                    break;
            }
            if (cube == bmgr.bfalse()) break;
        }
        f = bmgr.or_(f, cube);
    }
    return f;
}

namespace {

class PrimeBuilder {
public:
    PrimeBuilder(BddManager& bmgr, ZddManager& zmgr) : bmgr_(bmgr), zmgr_(zmgr) {}

    NodeId primes(BddId f) {
        if (f == zdd::kBddFalse) return zdd::kEmpty;
        if (f == zdd::kBddTrue) return zdd::kBase;
        const auto it = memo_.find(f);
        if (it != memo_.end()) return it->second;
        if (zmgr_.governor() != nullptr)
            throw_if_error(zmgr_.governor()->check(), "implicit_primes");

        const std::uint32_t v = bmgr_.var_of(f);
        const BddId f0 = bmgr_.lo_of(f);
        const BddId f1 = bmgr_.hi_of(f);
        const BddId fc = bmgr_.and_(f0, f1);

        const NodeId pc = primes(fc);
        const NodeId p0 = primes(f0);
        const NodeId p1 = primes(f1);

        // Primes mentioning x̄ / x are primes of the cofactor that are not
        // implicants (equivalently, not primes) of f0·f1 — the fused
        // p \ (p ∩ pc) pattern, canonical-identical to diff.
        const Zdd pcz = zmgr_.handle(pc);
        const Zdd only0 = zmgr_.diff_intersect(zmgr_.handle(p0), pcz);
        const Zdd only1 = zmgr_.diff_intersect(zmgr_.handle(p1), pcz);

        // Attach the literal variables. All primes of cofactors contain only
        // literals of inputs > v, so direct node construction keeps ordering.
        const Zdd with_neg =
            zmgr_.handle(zmgr_.make(zdd::neg_lit(v), zdd::kEmpty, only0.id()));
        const Zdd lo_h = zmgr_.union_(pcz, with_neg);
        const NodeId r = zmgr_.make(zdd::pos_lit(v), lo_h.id(), only1.id());
        memo_.emplace(f, r);
        roots_.push_back(zmgr_.handle(r));  // pin memoised results across GC
        return r;
    }

private:
    BddManager& bmgr_;
    ZddManager& zmgr_;
    std::unordered_map<BddId, NodeId> memo_;
    std::vector<Zdd> roots_;
};

}  // namespace

ImplicitPrimeResult implicit_primes(ZddManager& zmgr, const pla::Cover& care,
                                    const zdd::DdOptions& dd) {
    TRACE_SPAN("implicit_primes");
    const pla::CubeSpace& s = care.space();
    UCP_REQUIRE(s.num_outputs == 0, "implicit_primes requires an input-only cover");
    UCP_REQUIRE(2 * s.num_inputs <= zmgr.num_vars(),
                "ZDD manager needs 2 variables per input");

    BddManager bmgr(s.num_inputs, dd);
    const BddId f = cover_to_bdd(bmgr, care);

    PrimeBuilder builder(bmgr, zmgr);
    Zdd primes = zmgr.handle(builder.primes(f));

    ImplicitPrimeResult result{primes, zmgr.count(primes), zmgr.node_count(primes),
                               bmgr.size()};
    return result;
}

pla::Cover primes_zdd_to_cover(const ZddManager& zmgr, const Zdd& primes,
                               std::uint32_t num_inputs) {
    const pla::CubeSpace in_space{num_inputs, 0};
    pla::Cover out(in_space);
    const auto specs = zdd::decode_literal_sets(zmgr, primes, num_inputs);
    for (const auto& spec : specs) {
        pla::Cube c = pla::Cube::full_inputs(in_space);
        for (std::uint32_t i = 0; i < num_inputs; ++i) {
            switch (spec[i]) {
                case zdd::LitSpec::kZero:
                    c.set_in(in_space, i, pla::Lit::kZero);
                    break;
                case zdd::LitSpec::kOne:
                    c.set_in(in_space, i, pla::Lit::kOne);
                    break;
                case zdd::LitSpec::kDontCare:
                    break;
            }
        }
        out.add(std::move(c));
    }
    return out;
}

}  // namespace ucp::primes
