file(REMOVE_RECURSE
  "libucp.a"
)
