// Supplementary experiment (§3.2 narrative): the subgradient trajectory.
// The paper describes z_λ as "not monotonous: it oscillates from step to
// step. Only its best known value LB progressively rises" while the dual
// side squeezes the target from above. This bench prints the trajectory on
// a difficult-suite cyclic core and on a circulant so the behaviour is
// visible, plus a summary of how fast LB closes the gap to the LP optimum.
#include <iostream>

#include "bench_common.hpp"
#include "cover/table_builder.hpp"
#include "gen/scp_gen.hpp"
#include "gen/suites.hpp"
#include "lagrangian/subgradient.hpp"
#include "lp/simplex.hpp"
#include "matrix/reductions.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using ucp::TextTable;
using ucp::cov::CoverMatrix;

void trajectory(const std::string& name, const CoverMatrix& m,
                int max_print = 30) {
    ucp::lagr::SubgradientOptions opt;
    opt.record_trace = true;
    opt.max_iterations = 400;
    const auto sub = ucp::lagr::subgradient_ascent(m, opt);
    const auto lp = ucp::lp::solve_covering_lp(m);

    std::cout << "-- " << name << " (" << m.num_rows() << "x" << m.num_cols()
              << ", LP optimum "
              << (lp.status == ucp::lp::LpStatus::kOptimal
                      ? TextTable::num(lp.objective, 3)
                      : std::string("n/a"))
              << ") --\n";
    TextTable t({"iter", "z_lambda", "LB (monotone)", "w_LD", "incumbent",
                 "step t_k"});
    const std::size_t stride =
        std::max<std::size_t>(1, sub.trace.size() / max_print);
    for (std::size_t i = 0; i < sub.trace.size(); i += stride) {
        const auto& p = sub.trace[i];
        t.add_row({std::to_string(p.iteration), TextTable::num(p.z_lambda, 3),
                   TextTable::num(p.lb_best, 3), TextTable::num(p.w_ld, 3),
                   std::to_string(p.incumbent), TextTable::num(p.step, 4)});
    }
    t.print(std::cout);
    std::cout << "final: LB " << sub.lb << " (" << TextTable::num(sub.lb_fractional, 3)
              << "), incumbent " << sub.best_cost
              << (sub.proved_optimal ? " — proved optimal" : "") << ", "
              << sub.iterations << " iterations\n\n";
}

}  // namespace

int main(int argc, char** argv) {
    ucp::bench::JsonReporter json(argc, argv, "convergence");
    std::cout << "=== Subgradient convergence trajectories (section 3.2) ===\n\n";

    trajectory("circulant C(40, 7)", ucp::gen::cyclic_matrix(40, 7));

    {
        const auto suite = ucp::gen::difficult_cyclic_suite();
        const auto tab = ucp::cover::build_covering_table(suite[2].pla);  // exam
        const auto red = ucp::cov::reduce(tab.matrix);
        if (!red.solved())
            trajectory("cyclic core of 'exam'", red.core);
    }

    // Gap-closure summary over random instances: iterations until the bound
    // is within 2% of the LP optimum.
    // A run "closes" when the monotone LB reaches 98% of the LP optimum or
    // the integrality proof ⌈LB⌉ = incumbent fires first (early exit).
    std::cout << "-- gap closure: 98% of LP reached, or optimality proved --\n";
    TextTable t({"rows x cols", "density", "median iters", "closed", "proved",
                 "runs"});
    ucp::Rng seeds(42);
    for (const auto& [rows, cols, density] :
         std::vector<std::tuple<ucp::cov::Index, ucp::cov::Index, double>>{
             {20, 30, 0.15}, {40, 60, 0.08}, {80, 120, 0.05}}) {
        std::vector<int> iters_needed;
        int closed = 0, proved = 0;
        double sub_seconds = 0.0;
        const int runs = 15;
        for (int r = 0; r < runs; ++r) {
            ucp::gen::RandomScpOptions g;
            g.rows = rows;
            g.cols = cols;
            g.density = density;
            g.seed = seeds();
            const auto m = ucp::gen::random_scp(g);
            const auto lp = ucp::lp::solve_covering_lp(m);
            if (lp.status != ucp::lp::LpStatus::kOptimal) continue;
            ucp::lagr::SubgradientOptions opt;
            opt.record_trace = true;
            opt.max_iterations = 400;
            ucp::Timer sub_timer;
            const auto sub = ucp::lagr::subgradient_ascent(m, opt);
            sub_seconds += sub_timer.seconds();
            int hit = -1;
            for (const auto& p : sub.trace)
                if (p.lb_best >= 0.98 * lp.objective) {
                    hit = p.iteration;
                    break;
                }
            if (sub.proved_optimal && hit < 0) hit = sub.iterations;
            if (hit >= 0) {
                ++closed;
                iters_needed.push_back(hit);
            }
            if (sub.proved_optimal) ++proved;
        }
        std::sort(iters_needed.begin(), iters_needed.end());
        const int median =
            iters_needed.empty()
                ? -1
                : iters_needed[iters_needed.size() / 2];
        t.add_row({std::to_string(rows) + "x" + std::to_string(cols),
                   TextTable::num(density, 2),
                   median < 0 ? "-" : std::to_string(median),
                   std::to_string(closed), std::to_string(proved),
                   std::to_string(runs)});
        // wall_ms = subgradient time only (the LP reference solves are not
        // part of the system under test).
        json.record(std::to_string(rows) + "x" + std::to_string(cols),
                    static_cast<double>(median), sub_seconds * 1e3,
                    {{"closed", static_cast<double>(closed)},
                     {"proved", static_cast<double>(proved)},
                     {"runs", static_cast<double>(runs)}});
    }
    t.print(std::cout);

    // Dense subgradient suites: cores large enough that the per-iteration
    // passes (c̃ update, dual-side ẽ, step direction) are memory-bound on
    // the matrix layout rather than L1-resident. No LP reference here — the
    // solution fields are the subgradient's own deterministic outputs.
    std::cout << "\n-- dense subgradient suites (wall = subgradient only) --\n";
    TextTable td({"instance", "sum LB", "sum incumbent", "proved", "iters",
                  "sub ms"});
    ucp::Rng dense_seeds(7);
    for (const auto& [name, rows, cols, density, runs] :
         std::vector<std::tuple<std::string, ucp::cov::Index, ucp::cov::Index,
                                double, int>>{
             {"dense-400x800-d10", 400, 800, 0.10, 5},
             {"dense-500x1000-d6", 500, 1000, 0.06, 3},
             {"dense-800x1600-d4", 800, 1600, 0.04, 2}}) {
        // Instances are generated up front so a --min-of repeat loop re-times
        // exactly the same subgradient work (and the RNG stream feeding later
        // configs is unchanged).
        std::vector<ucp::cov::CoverMatrix> mats;
        mats.reserve(static_cast<std::size_t>(runs));
        for (int r = 0; r < runs; ++r) {
            ucp::gen::RandomScpOptions g;
            g.rows = rows;
            g.cols = cols;
            g.density = density;
            g.seed = dense_seeds();
            mats.push_back(ucp::gen::random_scp(g));
        }
        long lb_sum = 0, cost_sum = 0, iters = 0;
        int proved = 0;
        const ucp::bench::RepeatTiming rt =
            ucp::bench::time_min_of(json.min_of(), [&] {
                lb_sum = cost_sum = iters = 0;
                proved = 0;
                for (const auto& m : mats) {
                    ucp::lagr::SubgradientOptions opt;
                    opt.max_iterations = 400;
                    const auto sub = ucp::lagr::subgradient_ascent(m, opt);
                    lb_sum += static_cast<long>(sub.lb);
                    cost_sum += static_cast<long>(sub.best_cost);
                    iters += sub.iterations;
                    if (sub.proved_optimal) ++proved;
                }
            });
        const double sub_ms = rt.min_ms;
        td.add_row({name, std::to_string(lb_sum), std::to_string(cost_sum),
                    std::to_string(proved), std::to_string(iters),
                    TextTable::num(sub_ms, 1)});
        std::vector<std::pair<std::string, double>> extra{
            {"lb_sum", static_cast<double>(lb_sum)},
            {"proved", static_cast<double>(proved)},
            {"iterations", static_cast<double>(iters)},
            {"runs", static_cast<double>(runs)}};
        ucp::bench::append_repeat_fields(extra, rt);
        json.record(name, static_cast<double>(cost_sum), sub_ms, extra);
    }
    td.print(std::cout);
    return 0;
}
