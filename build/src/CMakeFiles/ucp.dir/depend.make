# Empty dependencies file for ucp.
# This may be replaced when dependencies are built.
