// Structured outcome codes for the anytime solver harness.
//
// Library code never calls exit()/abort(): recoverable resource trips
// (deadline, node budget, cancellation) and input errors surface either as a
// Status field on a result struct (solver boundaries, parser API) or as a
// Status-carrying exception (deep recursions, where unwinding through RAII
// handles is the only sane exit). The exception types deliberately derive
// from the std bases the pre-Status API threw — std::invalid_argument for
// bad input, std::runtime_error for resource trips — so existing callers and
// tests keep working while new code can switch on status_of().
#pragma once

#include <stdexcept>
#include <string>

namespace ucp {

enum class Status : std::uint8_t {
    kOk = 0,
    kDeadline,    ///< wall-clock deadline expired (anytime result returned)
    kNodeBudget,  ///< DD node / decode-size budget exceeded
    kCancelled,   ///< cooperative cancellation (CancelToken / SIGINT)
    kBadInput,    ///< malformed input or violated public precondition
    kResourceExhausted,  ///< memory budget exhausted (anytime result returned)
    kIoError,     ///< filesystem I/O failure (unreadable/unwritable path)
};

[[nodiscard]] inline const char* to_string(Status s) noexcept {
    switch (s) {
        case Status::kOk: return "ok";
        case Status::kDeadline: return "deadline";
        case Status::kNodeBudget: return "node_budget";
        case Status::kCancelled: return "cancelled";
        case Status::kBadInput: return "bad_input";
        case Status::kResourceExhausted: return "resource_exhausted";
        case Status::kIoError: return "io_error";
    }
    return "unknown";
}

/// Mixin interface implemented by every Status-carrying exception.
class StatusCarrier {
public:
    [[nodiscard]] virtual Status status() const noexcept = 0;

protected:
    ~StatusCarrier() = default;
};

/// Violated public precondition / malformed input (always kBadInput).
class BadInputError : public std::invalid_argument, public StatusCarrier {
public:
    explicit BadInputError(const std::string& what)
        : std::invalid_argument(what) {}
    [[nodiscard]] Status status() const noexcept override {
        return Status::kBadInput;
    }
};

/// Resource trip (deadline / node budget / cancellation) thrown from deep
/// recursions; callers at solver boundaries convert it into a Status result.
class ResourceError : public std::runtime_error, public StatusCarrier {
public:
    ResourceError(Status s, const std::string& what)
        : std::runtime_error(what), status_(s) {}
    [[nodiscard]] Status status() const noexcept override { return status_; }

private:
    Status status_;
};

/// The Status carried by an exception, or kBadInput for plain std exceptions
/// (the pre-Status convention: anything thrown on bad input).
[[nodiscard]] inline Status status_of(const std::exception& e) noexcept {
    if (const auto* c = dynamic_cast<const StatusCarrier*>(&e))
        return c->status();
    return Status::kBadInput;
}

}  // namespace ucp
