// Wall-clock timing used by benchmark harnesses to fill the CC(s) / T(s) columns
// of the paper's tables.
#pragma once

#include <chrono>

namespace ucp {

/// Simple monotonic stopwatch. Starts running on construction.
class Timer {
public:
    Timer() noexcept : start_(Clock::now()) {}

    void restart() noexcept { start_ = Clock::now(); }

    /// Elapsed time in seconds since construction or the last restart().
    [[nodiscard]] double seconds() const noexcept {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/// Deadline helper: lets long-running solvers honour a time budget.
class Deadline {
public:
    /// A non-positive budget means "no limit".
    explicit Deadline(double budget_seconds = 0.0) noexcept
        : budget_(budget_seconds) {}

    [[nodiscard]] bool expired() const noexcept {
        return budget_ > 0.0 && timer_.seconds() >= budget_;
    }

    [[nodiscard]] double remaining() const noexcept {
        return budget_ > 0.0 ? budget_ - timer_.seconds() : 1e300;
    }

private:
    double budget_;
    Timer timer_;
};

}  // namespace ucp
