// Implicit (ZDD-based) covering operations: row dominance via `minimal`,
// exhaustive minimal-cover enumeration, and min-cost extraction — all
// validated against brute force and against the explicit machinery.
#include <gtest/gtest.h>

#include <set>

#include "cover/zdd_cover.hpp"
#include "gen/scp_gen.hpp"
#include "matrix/reductions.hpp"
#include "solver/bnb.hpp"
#include "util/rng.hpp"

namespace {

using ucp::cov::Cost;
using ucp::cov::CoverMatrix;
using ucp::cov::Index;
using ucp::zdd::Var;
using ucp::zdd::ZddManager;

/// Brute force: all irredundant covers of a tiny matrix as sorted col sets.
std::set<std::vector<Index>> brute_minimal_covers(const CoverMatrix& m) {
    const Index C = m.num_cols();
    std::vector<std::vector<Index>> feasible;
    for (std::uint32_t mask = 0; mask < (1u << C); ++mask) {
        std::vector<Index> sol;
        for (Index j = 0; j < C; ++j)
            if ((mask >> j) & 1) sol.push_back(j);
        if (m.is_feasible(sol)) feasible.push_back(std::move(sol));
    }
    std::set<std::vector<Index>> minimal;
    for (const auto& a : feasible) {
        bool is_min = true;
        for (const auto& b : feasible) {
            if (b.size() >= a.size() || b == a) continue;
            if (std::includes(a.begin(), a.end(), b.begin(), b.end()))
                is_min = false;
        }
        if (is_min) minimal.insert(a);
    }
    return minimal;
}

CoverMatrix random_small(ucp::Rng& rng, Index rows, Index cols, double density,
                         Cost max_cost) {
    ucp::gen::RandomScpOptions g;
    g.rows = rows;
    g.cols = cols;
    g.density = density;
    g.min_cost = 1;
    g.max_cost = max_cost;
    g.seed = rng();
    return ucp::gen::random_scp(g);
}

TEST(ZddCover, RowsRoundTrip) {
    const CoverMatrix m =
        CoverMatrix::from_rows(4, {{0, 2}, {1, 3}, {0, 1, 2}}, {1, 2, 3, 4});
    ZddManager mgr(4);
    const auto z = ucp::cover::rows_as_zdd(mgr, m);
    EXPECT_DOUBLE_EQ(z.count(), 3.0);
    const CoverMatrix back = ucp::cover::zdd_to_rows(mgr, z, m);
    EXPECT_EQ(back.num_rows(), 3u);
    // Row order may differ; compare as sets.
    std::set<std::vector<Index>> a, b;
    for (Index i = 0; i < 3; ++i) {
        a.insert(m.row(i));
        b.insert(back.row(i));
    }
    EXPECT_EQ(a, b);
    for (Index j = 0; j < 4; ++j) EXPECT_EQ(back.cost(j), m.cost(j));
}

TEST(ZddCover, DuplicateRowsCollapse) {
    const CoverMatrix m =
        CoverMatrix::from_rows(3, {{0, 1}, {0, 1}, {1, 2}});
    const auto r = ucp::cover::implicit_row_dominance(m);
    EXPECT_EQ(r.rows_in, 3u);
    EXPECT_EQ(r.rows_out, 2u);
}

TEST(ZddCover, ImplicitRowDominanceMatchesBruteForce) {
    ucp::Rng rng(101);
    for (int trial = 0; trial < 25; ++trial) {
        const CoverMatrix m = random_small(rng, 12, 10, 0.3, 1);
        const auto impl = ucp::cover::implicit_row_dominance(m);

        // Brute force: minimal row supports.
        std::set<std::vector<Index>> expected;
        for (Index i = 0; i < m.num_rows(); ++i) {
            bool minimal = true;
            for (Index k = 0; k < m.num_rows(); ++k) {
                if (i == k) continue;
                const auto& a = m.row(i);
                const auto& b = m.row(k);
                if (a == b ? k < i
                           : std::includes(a.begin(), a.end(), b.begin(),
                                           b.end()))
                    minimal = false;
            }
            if (minimal) expected.insert(m.row(i));
        }
        std::set<std::vector<Index>> got;
        for (Index i = 0; i < impl.matrix.num_rows(); ++i)
            got.insert(impl.matrix.row(i));
        EXPECT_EQ(got, expected);
    }
}

TEST(ZddCover, MinimalCoversMatchBruteForce) {
    ucp::Rng rng(103);
    for (int trial = 0; trial < 25; ++trial) {
        const CoverMatrix m = random_small(rng, 8, 9, 0.3, 1);
        ZddManager mgr(m.num_cols());
        const auto covers = ucp::cover::minimal_covers(mgr, m);
        const auto expected = brute_minimal_covers(m);
        EXPECT_DOUBLE_EQ(covers.count(), static_cast<double>(expected.size()));
        std::set<std::vector<Index>> got;
        mgr.for_each_set(covers, [&](const std::vector<Var>& s) {
            std::vector<Index> sol(s.begin(), s.end());
            std::sort(sol.begin(), sol.end());
            got.insert(std::move(sol));
        });
        EXPECT_EQ(got, expected);
    }
}

TEST(ZddCover, MinimalCoversOnCyclicMatrix) {
    // C(5,2): minimal covers are well understood — each is an irredundant
    // selection of ≥ ⌈5/2⌉ = 3 columns; verify every member is feasible and
    // irredundant.
    const CoverMatrix m = ucp::gen::cyclic_matrix(5, 2);
    ZddManager mgr(5);
    const auto covers = ucp::cover::minimal_covers(mgr, m);
    EXPECT_GT(covers.count(), 0.0);
    mgr.for_each_set(covers, [&](const std::vector<Var>& s) {
        std::vector<Index> sol(s.begin(), s.end());
        EXPECT_TRUE(m.is_feasible(sol));
        for (std::size_t d = 0; d < sol.size(); ++d) {
            std::vector<Index> reduced;
            for (std::size_t t = 0; t < sol.size(); ++t)
                if (t != d) reduced.push_back(sol[t]);
            EXPECT_FALSE(m.is_feasible(reduced));
        }
        EXPECT_GE(sol.size(), 3u);
    });
}

TEST(ZddCover, MinCostMemberMatchesExactSolver) {
    ucp::Rng rng(107);
    for (int trial = 0; trial < 25; ++trial) {
        const CoverMatrix m = random_small(rng, 9, 10, 0.28, 4);
        const auto best = ucp::cover::implicit_exact_cover(m);
        const auto exact = ucp::solver::solve_exact(m);
        ASSERT_TRUE(exact.optimal);
        EXPECT_EQ(best.cost, exact.cost);
        std::vector<Index> sol(best.members.begin(), best.members.end());
        EXPECT_TRUE(m.is_feasible(sol));
        EXPECT_EQ(m.solution_cost(sol), best.cost);
    }
}

TEST(ZddCover, MinCostMemberOnHandFamily) {
    ZddManager mgr(4);
    const auto fam = mgr.union_(mgr.set_of({0, 1}), mgr.set_of({2}));
    const auto best =
        ucp::cover::min_cost_member(mgr, fam, {1, 1, 5, 1});
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->cost, 2);  // {0,1} costs 2 < {2} costs 5
    EXPECT_EQ(best->members, (std::vector<Var>{0, 1}));
    EXPECT_FALSE(
        ucp::cover::min_cost_member(mgr, mgr.empty(), {1, 1, 1, 1}).has_value());
}

TEST(ZddCover, NodeGuardFires) {
    // A dense random matrix with many columns can blow the guard.
    ucp::gen::RandomScpOptions g;
    g.rows = 40;
    g.cols = 60;
    g.density = 0.25;
    g.seed = 5;
    const CoverMatrix m = ucp::gen::random_scp(g);
    ZddManager mgr(m.num_cols());
    EXPECT_THROW(ucp::cover::minimal_covers(mgr, m, /*node_guard=*/500),
                 std::runtime_error);
}

TEST(ZddCover, ImplicitColumnDominanceMatchesBruteForce) {
    ucp::Rng rng(109);
    for (int trial = 0; trial < 25; ++trial) {
        const CoverMatrix m = random_small(rng, 10, 12, 0.3, 1);
        const auto impl = ucp::cover::implicit_column_dominance(m);

        // Brute force: column j removed iff some k has rows(j) ⊆ rows(k)
        // (ties keep the lowest index).
        std::vector<bool> keep(m.num_cols(), true);
        for (Index j = 0; j < m.num_cols(); ++j) {
            for (Index k = 0; k < m.num_cols() && keep[j]; ++k) {
                if (j == k) continue;
                const auto& a = m.col(j);
                const auto& b = m.col(k);
                if (a == b ? k < j
                           : std::includes(b.begin(), b.end(), a.begin(),
                                           a.end()))
                    keep[j] = false;
            }
        }
        std::vector<Index> expected;
        for (Index j = 0; j < m.num_cols(); ++j)
            if (keep[j]) expected.push_back(j);
        EXPECT_EQ(impl.col_map, expected);
        EXPECT_EQ(impl.cols_removed, m.num_cols() - expected.size());
        // Optimum preserved (unit costs).
        EXPECT_EQ(ucp::solver::solve_exact(impl.matrix).cost,
                  ucp::solver::solve_exact(m).cost);
    }
}

TEST(ZddCover, ImplicitColumnDominanceRejectsNonUniformCosts) {
    const CoverMatrix m = CoverMatrix::from_rows(2, {{0, 1}}, {1, 2});
    EXPECT_THROW(ucp::cover::implicit_column_dominance(m),
                 std::invalid_argument);
}

TEST(ZddCover, AgreesWithExplicitReductionOnEssentialFreeCore) {
    // On a matrix that IS its cyclic core, implicit row dominance is a no-op,
    // like the explicit reducer.
    const CoverMatrix m = ucp::gen::cyclic_matrix(9, 3);
    const auto impl = ucp::cover::implicit_row_dominance(m);
    EXPECT_EQ(impl.rows_out, 9u);
    const auto expl = ucp::cov::reduce(m);
    EXPECT_EQ(expl.core.num_rows(), 9u);
}

}  // namespace
