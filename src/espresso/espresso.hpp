// An Espresso-style heuristic two-level minimiser (Brayton et al. [3]) — the
// baseline the paper compares against in Tables 1–2 ("Espresso" normal and
// "Espr. Strong" modes).
//
// The classical loop on a multi-output cover F with don't-care cover D and
// per-output off-sets R_k:
//   EXPAND      — grow each cube into a prime against the blocking off-set;
//   IRREDUNDANT — drop cubes covered by the rest of the cover ∪ D;
//   REDUCE      — shrink each cube to the smallest cube still needed,
//                 unblocking the next EXPAND;
// iterated until the (cube count, literal count) cost stops improving.
// Strong mode adds LAST_GASP: maximal independent reductions are re-expanded
// with a different literal order to discover primes the main loop missed.
#pragma once

#include <vector>

#include "pla/pla_io.hpp"
#include "pla/urp.hpp"

namespace ucp::esp {

struct EspressoOptions {
    bool strong = false;   ///< enable LAST_GASP + extra iterations
    int max_loops = 25;    ///< safety bound on the improvement loop
    /// Strong mode only: replace the greedy IRREDUNDANT of the final cover by
    /// an exact minimum-subset selection (covering problem solved by
    /// branch-and-bound) when the cover has at most this many cubes.
    std::size_t exact_irredundant_max_cubes = 150;
};

struct EspressoResult {
    pla::Cover cover;       ///< minimised multi-output cover
    int loops = 0;          ///< EXPAND/IRREDUNDANT/REDUCE iterations executed
    std::size_t initial_cubes = 0;
    std::size_t final_cubes = 0;
    double seconds = 0.0;
};

/// Per-output off-sets R_k = ¬(ON_k ∪ DC_k), as input-only covers.
std::vector<pla::Cover> compute_offsets(const pla::Pla& pla);

/// EXPAND: every cube of f is grown to a (multi-output) prime. `order_seed`
/// varies the literal-raising order (used by LAST_GASP); 0 = default order.
pla::Cover expand(const pla::Cover& f, const std::vector<pla::Cover>& offsets,
                  unsigned order_seed = 0);

/// IRREDUNDANT: greedy removal of cubes covered by (f − cube) ∪ dc.
pla::Cover irredundant(const pla::Cover& f, const pla::Cover& dc);

/// Exact IRREDUNDANT: the minimum-cardinality subset of f still covering the
/// PLA's care on-set, found by solving the (f-cubes vs onset) covering
/// problem exactly. Falls back to returning f on solver truncation.
pla::Cover irredundant_exact(const pla::Cover& f, const pla::Pla& pla);

/// REDUCE: shrink each cube to the smallest cube covering the points no other
/// cube (nor dc) covers; drops fully redundant cubes and prunable outputs.
pla::Cover reduce_cover(const pla::Cover& f, const pla::Cover& dc);

/// The full minimiser.
EspressoResult espresso(const pla::Pla& pla, const EspressoOptions& opt = {});

}  // namespace ucp::esp
