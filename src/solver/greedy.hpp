// Classical greedy set-covering baseline (Johnson–Lovász [16], Chvátal [9]):
// repeatedly take the column minimising cost / newly-covered-rows, then make
// the result irredundant. Used as the baseline heuristic and as the initial
// incumbent for the exact solver.
#pragma once

#include <vector>

#include "matrix/sparse_matrix.hpp"

namespace ucp::solver {

struct GreedyResult {
    std::vector<cov::Index> solution;
    cov::Cost cost = 0;
};

GreedyResult chvatal_greedy(const cov::CoverMatrix& m);

}  // namespace ucp::solver
