# Empty dependencies file for test_zdd.
# This may be replaced when dependencies are built.
