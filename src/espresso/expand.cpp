#include <algorithm>
#include <numeric>

#include "espresso/espresso.hpp"

namespace ucp::esp {

using pla::Cover;
using pla::Cube;
using pla::CubeSpace;
using pla::Lit;

std::vector<Cover> compute_offsets(const pla::Pla& pla) {
    const CubeSpace& s = pla.space();
    std::vector<Cover> offsets;
    offsets.reserve(s.num_outputs);
    for (std::uint32_t k = 0; k < s.num_outputs; ++k) {
        Cover care = pla.on.restricted_to_output(k);
        care.append(pla.dc.restricted_to_output(k));
        Cover off = pla::complement(care);
        off.remove_single_cube_contained();
        offsets.push_back(std::move(off));
    }
    return offsets;
}

namespace {

/// The off-set cubes blocking a multi-output cube: union of R_k over its
/// asserted outputs, de-duplicated.
Cover blocking_offset(const CubeSpace& s, const Cube& c,
                      const std::vector<Cover>& offsets) {
    const CubeSpace in_space{s.num_inputs, 0};
    Cover block(in_space);
    for (std::uint32_t k = 0; k < s.num_outputs; ++k) {
        if (!c.out(s, k)) continue;
        block.append(offsets[k]);
    }
    block.remove_single_cube_contained();
    return block;
}

/// Does the input cube intersect any off-cube?
bool blocked(const CubeSpace& in_space, const Cube& input, const Cover& off) {
    for (const auto& r : off)
        if (input.intersects_inputs(in_space, r)) return true;
    return false;
}

}  // namespace

Cover expand(const Cover& f, const std::vector<Cover>& offsets,
             unsigned order_seed) {
    const CubeSpace& s = f.space();
    UCP_REQUIRE(offsets.size() == s.num_outputs, "one off-set per output required");
    const CubeSpace in_space{s.num_inputs, 0};

    // Process large cubes first so they absorb the small ones.
    std::vector<std::size_t> order(f.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return f[a].input_literal_count(s) < f[b].input_literal_count(s);
    });

    Cover out(s);
    for (const std::size_t idx : order) {
        const Cube& original = f[idx];
        // Skip cubes already swallowed by an earlier expansion.
        bool swallowed = false;
        for (const auto& done : out)
            if (done.contains(s, original)) {
                swallowed = true;
                break;
            }
        if (swallowed) continue;

        const Cover block = blocking_offset(s, original, offsets);

        // Project the input part into the input-only space for the checks.
        Cube input = Cube::full_inputs(in_space);
        for (std::uint32_t i = 0; i < s.num_inputs; ++i)
            input.set_in(in_space, i, original.in(s, i));

        // Literal raising order: by default ascending index; order_seed
        // rotates the sequence so LAST_GASP explores different primes.
        std::vector<std::uint32_t> vars;
        for (std::uint32_t i = 0; i < s.num_inputs; ++i)
            if (original.in(s, i) != Lit::kDontCare) vars.push_back(i);
        if (order_seed != 0 && !vars.empty())
            std::rotate(vars.begin(),
                        vars.begin() + (order_seed % vars.size()), vars.end());

        for (const std::uint32_t v : vars) {
            const Lit saved = input.in(in_space, v);
            input.set_in(in_space, v, Lit::kDontCare);
            if (blocked(in_space, input, block))
                input.set_in(in_space, v, saved);  // raise rejected
        }

        Cube expanded = original;
        for (std::uint32_t i = 0; i < s.num_inputs; ++i)
            expanded.set_in(s, i, input.in(in_space, i));

        // Output raising: assert output k when no off-cube of R_k intersects.
        for (std::uint32_t k = 0; k < s.num_outputs; ++k) {
            if (expanded.out(s, k)) continue;
            if (!blocked(in_space, input, offsets[k])) expanded.set_out(s, k, true);
        }

        out.add(std::move(expanded));
    }
    out.remove_single_cube_contained();
    return out;
}

}  // namespace ucp::esp
