// Domain example: binate covering (the generalisation of UCP the paper's
// introduction mentions). Builds a small constraint system where choices
// exclude one another — a toy technology-binding problem — and solves it with
// the exact BCP solver.
//
//   $ ./binate_cover [--rows=20] [--cols=12] [--neg=0.35] [--seed=1]
#include <iostream>

#include "bcp/bcp.hpp"
#include "gen/scp_gen.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
    const ucp::Options opts(argc, argv);

    std::cout << "Binate covering demo\n\n";
    // A hand-built instance: pick implementations {0,1,2} for block A and
    // {3,4} for block B; x0 and x3 conflict; x2 requires x4.
    //   (x0 ∨ x1 ∨ x2)          — block A implemented
    //   (x3 ∨ x4)               — block B implemented
    //   (¬x0 ∨ ¬x3)             — x0 and x3 conflict
    //   (¬x2 ∨ x4)              — x2 requires x4
    const ucp::bcp::BcpMatrix hand = ucp::bcp::BcpMatrix::from_rows(
        5,
        {{{0, true}, {1, true}, {2, true}},
         {{3, true}, {4, true}},
         {{0, false}, {3, false}},
         {{2, false}, {4, true}}},
        {1, 3, 1, 1, 2});
    const auto hr = ucp::bcp::solve_bcp(hand);
    std::cout << "hand instance: ";
    if (hr.feasible) {
        std::cout << "optimum " << hr.cost << ", choose {";
        for (ucp::cov::Index j = 0; j < 5; ++j)
            if (hr.assignment[j]) std::cout << ' ' << 'x' << j;
        std::cout << " }  (" << hr.nodes << " nodes)\n";
    } else {
        std::cout << "infeasible\n";
    }

    // A random instance, sized by the command line.
    ucp::gen::RandomBcpOptions g;
    g.rows = static_cast<ucp::cov::Index>(opts.get_int("rows", 20));
    g.cols = static_cast<ucp::cov::Index>(opts.get_int("cols", 12));
    g.negative_fraction = opts.get_double("neg", 0.35);
    g.literals_per_row = opts.get_double("lits", 3.0);
    g.max_cost = opts.get_int("max-cost", 3);
    g.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
    const auto m = ucp::gen::random_bcp(g);
    std::cout << "\nrandom instance (" << m.num_rows() << " clauses, "
              << m.num_cols() << " variables, seed " << g.seed << "):\n";
    const auto rr = ucp::bcp::solve_bcp(m);
    if (!rr.feasible) {
        std::cout << "  UNSATISFIABLE (proved in " << rr.nodes << " nodes)\n";
    } else {
        std::cout << "  optimum " << rr.cost << "  (lower bound "
                  << rr.lower_bound << ", " << rr.nodes << " nodes, "
                  << rr.seconds << " s)\n  chosen:";
        for (ucp::cov::Index j = 0; j < m.num_cols(); ++j)
            if (rr.assignment[j]) std::cout << " x" << j;
        std::cout << '\n';
    }
    return 0;
}
