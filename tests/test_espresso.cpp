// Espresso-like minimiser: functional equivalence after every phase,
// primality after EXPAND, irredundancy, cost monotonicity, strong mode.
#include <gtest/gtest.h>

#include "espresso/espresso.hpp"
#include "gen/pla_gen.hpp"
#include "solver/two_level.hpp"
#include "util/rng.hpp"

namespace {

using ucp::esp::EspressoOptions;
using ucp::gen::RandomPlaOptions;
using ucp::pla::Cover;
using ucp::pla::Pla;

Pla random_pla(std::uint64_t seed, std::uint32_t n = 6, std::uint32_t m = 2) {
    RandomPlaOptions opt;
    opt.num_inputs = n;
    opt.num_outputs = m;
    opt.num_cubes = 14;
    opt.literal_prob = 0.55;
    opt.dc_fraction = 0.2;
    opt.seed = seed;
    return ucp::gen::random_pla(opt);
}

TEST(Espresso, OffsetsAreComplements) {
    const Pla p = random_pla(1);
    const auto offsets = ucp::esp::compute_offsets(p);
    ASSERT_EQ(offsets.size(), p.space().num_outputs);
    for (std::uint32_t k = 0; k < p.space().num_outputs; ++k) {
        Cover care = p.on.restricted_to_output(k);
        care.append(p.dc.restricted_to_output(k));
        care.for_each_assignment([&](std::uint64_t a) {
            EXPECT_NE(care.eval({a}), offsets[k].eval({a}));
        });
    }
}

TEST(Espresso, ExpandPreservesFunctionAndGrowsCubes) {
    ucp::Rng seeds(71);
    for (int trial = 0; trial < 10; ++trial) {
        const Pla p = random_pla(seeds());
        const auto offsets = ucp::esp::compute_offsets(p);
        const Cover expanded = ucp::esp::expand(p.on, offsets);
        // Equivalence modulo dc.
        EXPECT_TRUE(ucp::solver::verify_equivalence(p, expanded));
        // No cube shrank: every original cube is covered by some expanded one.
        for (const auto& c : p.on) {
            bool covered = false;
            for (const auto& e : expanded)
                covered |= e.contains(p.space(), c);
            EXPECT_TRUE(covered);
        }
        EXPECT_LE(expanded.size(), p.on.size());
    }
}

TEST(Espresso, ExpandedCubesAreMaximalOnInputs) {
    // Raising any bound literal of an expanded cube must hit the off-set.
    const Pla p = random_pla(123, 5, 1);
    const auto offsets = ucp::esp::compute_offsets(p);
    const Cover expanded = ucp::esp::expand(p.on, offsets);
    const auto& s = p.space();
    for (const auto& c : expanded) {
        for (std::uint32_t i = 0; i < s.num_inputs; ++i) {
            if (c.in(s, i) == ucp::pla::Lit::kDontCare) continue;
            ucp::pla::Cube raised = c;
            raised.set_in(s, i, ucp::pla::Lit::kDontCare);
            // The raised cube must intersect the off-set of some asserted
            // output (otherwise expand would have raised it).
            bool blocked = false;
            for (std::uint32_t k = 0; k < s.num_outputs; ++k) {
                if (!c.out(s, k)) continue;
                for (const auto& r : offsets[k]) {
                    ucp::pla::Cube ri = ucp::pla::Cube::full_inputs(
                        ucp::pla::CubeSpace{s.num_inputs, 0});
                    // compare input parts in the input-only space
                    ucp::pla::Cube ci = ri;
                    for (std::uint32_t v = 0; v < s.num_inputs; ++v) {
                        ri.set_in({s.num_inputs, 0}, v, r.in({s.num_inputs, 0}, v));
                        ci.set_in({s.num_inputs, 0}, v, raised.in(s, v));
                    }
                    blocked |= ci.intersects_inputs({s.num_inputs, 0}, ri);
                }
            }
            EXPECT_TRUE(blocked);
        }
    }
}

TEST(Espresso, IrredundantKeepsEquivalenceAndIsIrredundant) {
    ucp::Rng seeds(73);
    for (int trial = 0; trial < 10; ++trial) {
        const Pla p = random_pla(seeds());
        const auto offsets = ucp::esp::compute_offsets(p);
        const Cover expanded = ucp::esp::expand(p.on, offsets);
        const Cover irred = ucp::esp::irredundant(expanded, p.dc);
        EXPECT_TRUE(ucp::solver::verify_equivalence(p, irred));
        EXPECT_LE(irred.size(), expanded.size());
        // Removing any cube breaks coverage.
        for (std::size_t drop = 0; drop < irred.size(); ++drop) {
            Cover rest(irred.space());
            for (std::size_t i = 0; i < irred.size(); ++i)
                if (i != drop) rest.add(irred[i]);
            rest.append(p.dc);
            EXPECT_FALSE(ucp::pla::cover_contains_cube(rest, irred[drop]));
        }
    }
}

TEST(Espresso, IrredundantExactIsMinimumSubset) {
    ucp::Rng seeds(74);
    for (int trial = 0; trial < 8; ++trial) {
        const Pla p = random_pla(seeds(), 5, 2);
        const auto offsets = ucp::esp::compute_offsets(p);
        const Cover expanded = ucp::esp::expand(p.on, offsets);
        const Cover exact = ucp::esp::irredundant_exact(expanded, p);
        EXPECT_TRUE(ucp::solver::verify_equivalence(p, exact));
        // Never worse than the greedy removal.
        const Cover greedy = ucp::esp::irredundant(expanded, p.dc);
        EXPECT_LE(exact.size(), greedy.size());
        // Brute-force minimality over the expanded pool (small pools only).
        if (expanded.size() <= 16) {
            std::size_t best = expanded.size();
            for (std::uint32_t mask = 0; mask < (1u << expanded.size());
                 ++mask) {
                Cover subset(p.space());
                for (std::size_t i = 0; i < expanded.size(); ++i)
                    if ((mask >> i) & 1) subset.add(expanded[i]);
                if (subset.size() >= best) continue;
                if (ucp::solver::verify_equivalence(p, subset))
                    best = subset.size();
            }
            EXPECT_EQ(exact.size(), best) << "seed trial " << trial;
        }
    }
}

TEST(Espresso, ReducePreservesFunction) {
    ucp::Rng seeds(75);
    for (int trial = 0; trial < 10; ++trial) {
        const Pla p = random_pla(seeds());
        const auto offsets = ucp::esp::compute_offsets(p);
        Cover f = ucp::esp::expand(p.on, offsets);
        f = ucp::esp::irredundant(f, p.dc);
        const Cover reduced = ucp::esp::reduce_cover(f, p.dc);
        EXPECT_TRUE(ucp::solver::verify_equivalence(p, reduced));
        EXPECT_LE(reduced.size(), f.size());
    }
}

TEST(Espresso, FullLoopEquivalentAndNoWorseThanInput) {
    ucp::Rng seeds(77);
    for (int trial = 0; trial < 10; ++trial) {
        const Pla p = random_pla(seeds());
        const auto r = ucp::esp::espresso(p);
        EXPECT_TRUE(ucp::solver::verify_equivalence(p, r.cover));
        EXPECT_LE(r.final_cubes, r.initial_cubes + 0u);
        EXPECT_GE(r.loops, 1);
    }
}

TEST(Espresso, StrongModeNeverWorse) {
    ucp::Rng seeds(79);
    for (int trial = 0; trial < 8; ++trial) {
        const Pla p = random_pla(seeds(), 7, 2);
        EspressoOptions normal, strong;
        strong.strong = true;
        const auto rn = ucp::esp::espresso(p, normal);
        const auto rs = ucp::esp::espresso(p, strong);
        EXPECT_TRUE(ucp::solver::verify_equivalence(p, rs.cover));
        EXPECT_LE(rs.cover.size(), rn.cover.size());
    }
}

TEST(Espresso, SingleOutputKnownMinimum) {
    // f = Σm(0,1,2,3) over 2 vars = tautology: one universal cube.
    const ucp::pla::CubeSpace s{2, 1};
    ucp::pla::Pla p;
    p.on = Cover::from_strings(s, {{"00", "1"}, {"01", "1"}, {"10", "1"}, {"11", "1"}});
    p.dc = Cover(s);
    p.off = Cover(s);
    const auto r = ucp::esp::espresso(p);
    EXPECT_EQ(r.cover.size(), 1u);
    EXPECT_EQ(r.cover[0].input_literal_count(s), 0u);
}

TEST(Espresso, DontCaresEnableMerging) {
    // ON = {00}, DC = {01, 10, 11}: one universal cube suffices.
    const ucp::pla::CubeSpace s{2, 1};
    ucp::pla::Pla p;
    p.on = Cover::from_strings(s, {{"00", "1"}});
    p.dc = Cover::from_strings(s, {{"01", "1"}, {"1-", "1"}});
    p.off = Cover(s);
    const auto r = ucp::esp::espresso(p);
    EXPECT_EQ(r.cover.size(), 1u);
}

}  // namespace
