// Zero-suppressed Binary Decision Diagram (ZDD) package.
//
// This is the substrate that replaces the CUDD library [21] used by the paper.
// A ZDD canonically represents a family of sets over variables 0..num_vars-1
// (Minato, DAC'93 [18]). The covering algorithms use ZDDs for:
//   * sets of cubes (prime implicants), with two ZDD variables per input
//     variable (positive / negative literal) — see zdd_cubes.hpp;
//   * sets of minterms (one ZDD variable per input variable, a minterm being
//     the set of variables assigned 1) — used by the implicit covering phase.
//
// Design notes
//   * Nodes live in a flat arena (std::vector). NodeId 0 is the empty family
//     (terminal 0) and NodeId 1 is the unit family {∅} (terminal 1).
//   * Canonicity: hi == 0 is never materialised (zero-suppression rule) and a
//     unique table guarantees structural sharing.
//   * A lossy direct-mapped computed cache memoises binary operations.
//   * External references are RAII handles (class Zdd). Garbage collection is
//     mark-and-sweep from the externally referenced roots; it runs only
//     between top-level operations, never during a recursion.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ucp::zdd {

using NodeId = std::uint32_t;
using Var = std::uint32_t;

inline constexpr NodeId kEmpty = 0;  ///< terminal 0: the empty family {}
inline constexpr NodeId kBase = 1;   ///< terminal 1: the unit family {∅}
inline constexpr Var kTermVar = 0xFFFFFFFFu;

class ZddManager;

/// RAII handle to a ZDD root. Keeps the referenced subgraph alive across GC.
/// Cheap to copy (bumps a per-node external refcount).
class Zdd {
public:
    Zdd() noexcept : mgr_(nullptr), id_(kEmpty) {}
    Zdd(ZddManager* mgr, NodeId id);
    Zdd(const Zdd& other);
    Zdd(Zdd&& other) noexcept;
    Zdd& operator=(const Zdd& other);
    Zdd& operator=(Zdd&& other) noexcept;
    ~Zdd();

    [[nodiscard]] NodeId id() const noexcept { return id_; }
    [[nodiscard]] ZddManager* manager() const noexcept { return mgr_; }
    [[nodiscard]] bool is_empty() const noexcept { return id_ == kEmpty; }
    [[nodiscard]] bool is_base() const noexcept { return id_ == kBase; }

    // Canonical representation: structural equality is id equality.
    friend bool operator==(const Zdd& a, const Zdd& b) noexcept {
        return a.id_ == b.id_ && a.mgr_ == b.mgr_;
    }
    friend bool operator!=(const Zdd& a, const Zdd& b) noexcept { return !(a == b); }

    // Set-algebra convenience operators (delegate to the manager).
    Zdd operator|(const Zdd& rhs) const;  ///< union
    Zdd operator&(const Zdd& rhs) const;  ///< intersection
    Zdd operator-(const Zdd& rhs) const;  ///< difference
    Zdd operator*(const Zdd& rhs) const;  ///< cube-set (unate) product

    /// Number of sets in the family (saturating at ~1e18 as uint64, exact as double
    /// up to 2^53).
    [[nodiscard]] double count() const;
    /// Number of DAG nodes reachable from this root (excluding terminals).
    [[nodiscard]] std::size_t node_count() const;

private:
    friend class ZddManager;
    void release() noexcept;

    ZddManager* mgr_;
    NodeId id_;
};

/// The node arena, unique table, computed cache and operation implementations.
class ZddManager {
public:
    explicit ZddManager(Var num_vars);
    /// Flushes the computed-cache counters into the global stats registry
    /// ("zdd.cache_hits" / "zdd.cache_misses").
    ~ZddManager();

    ZddManager(const ZddManager&) = delete;
    ZddManager& operator=(const ZddManager&) = delete;

    [[nodiscard]] Var num_vars() const noexcept { return num_vars_; }

    // ---- constructors -------------------------------------------------------
    Zdd empty() { return Zdd(this, kEmpty); }
    Zdd base() { return Zdd(this, kBase); }
    /// The family {{v}} containing the single set {v}.
    Zdd single(Var v);
    /// The family containing exactly the given set of variables (one set).
    Zdd set_of(const std::vector<Var>& vars);
    /// Family of all 2^k subsets of the given variables.
    Zdd power_set(const std::vector<Var>& vars);

    // ---- core set operations ------------------------------------------------
    Zdd union_(const Zdd& a, const Zdd& b);
    Zdd intersect(const Zdd& a, const Zdd& b);
    Zdd diff(const Zdd& a, const Zdd& b);
    /// Subsets of `a` not containing v (a.k.a. offset / subset0).
    Zdd subset0(const Zdd& a, Var v);
    /// Subsets of `a` containing v, with v removed (a.k.a. onset / subset1).
    Zdd subset1(const Zdd& a, Var v);
    /// Toggle membership of v in every set of `a`.
    Zdd change(const Zdd& a, Var v);

    // ---- cube-set operations (Minato / Coudert operators) -------------------
    /// All pairwise unions of a set from `a` and a set from `b`.
    Zdd product(const Zdd& a, const Zdd& b);
    /// { f ∈ a : ∃ g ∈ b, f ⊇ g }.
    Zdd sup_set(const Zdd& a, const Zdd& b);
    /// { f ∈ a : ∃ g ∈ b, f ⊆ g }.
    Zdd sub_set(const Zdd& a, const Zdd& b);
    /// Sets of `a` that are maximal under inclusion within `a`.
    Zdd maximal(const Zdd& a);
    /// Sets of `a` that are minimal under inclusion within `a`.
    Zdd minimal(const Zdd& a);

    // ---- queries -------------------------------------------------------------
    double count(const Zdd& a);
    /// Exact cardinality as a decimal string (families beyond 2^53 overflow
    /// the double count; this never does).
    std::string count_exact(const Zdd& a) const;
    std::size_t node_count(const Zdd& a) const;
    /// Invokes fn once per set in the family, with the sorted member variables.
    void for_each_set(const Zdd& a,
                      const std::function<void(const std::vector<Var>&)>& fn) const;
    /// One arbitrary set of the family (the lexicographically first path).
    /// Precondition: a is not empty.
    std::vector<Var> any_set(const Zdd& a) const;

    /// Graphviz dump for debugging / documentation.
    std::string to_dot(const Zdd& a, const std::string& name = "zdd") const;

    /// Computed-cache statistics since construction. Each manager is
    /// single-threaded, so these are plain (non-atomic) counters; the
    /// destructor folds them into the global stats registry.
    struct CacheStats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        [[nodiscard]] double hit_rate() const noexcept {
            const std::uint64_t total = hits + misses;
            return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
        }
    };
    [[nodiscard]] const CacheStats& cache_stats() const noexcept {
        return cache_stats_;
    }

    // ---- resource management --------------------------------------------------
    /// Live (allocated, non-freed) node count, excluding terminals.
    [[nodiscard]] std::size_t live_nodes() const noexcept {
        return nodes_.size() - 2 - free_.size();
    }
    /// Mark-and-sweep collection from externally referenced roots.
    /// Returns the number of nodes reclaimed.
    std::size_t gc();

    // Internal node accessors — used by the BDD/prime layers which share the
    // recursion style; exposed as public-but-low-level API.
    struct Node {
        Var var;
        NodeId lo;
        NodeId hi;
    };
    [[nodiscard]] Var var_of(NodeId n) const noexcept {
        return n < 2 ? kTermVar : nodes_[n].var;
    }
    [[nodiscard]] NodeId lo_of(NodeId n) const noexcept { return nodes_[n].lo; }
    [[nodiscard]] NodeId hi_of(NodeId n) const noexcept { return nodes_[n].hi; }
    /// Hash-consed node constructor enforcing the zero-suppression rule.
    NodeId make(Var v, NodeId lo, NodeId hi);

    /// Wraps a raw node id into an owning handle.
    Zdd handle(NodeId n) { return Zdd(this, n); }

private:
    friend class Zdd;

    enum class Op : std::uint8_t {
        kUnion = 1,
        kIntersect,
        kDiff,
        kProduct,
        kSupSet,
        kSubSet,
        kMaximal,
        kMinimal,
        kSubset0,
        kSubset1,
        kChange,
    };

    // Recursive cores (operate on NodeIds).
    NodeId union_rec(NodeId a, NodeId b);
    NodeId intersect_rec(NodeId a, NodeId b);
    NodeId diff_rec(NodeId a, NodeId b);
    NodeId product_rec(NodeId a, NodeId b);
    NodeId sup_set_rec(NodeId a, NodeId b);
    NodeId sub_set_rec(NodeId a, NodeId b);
    NodeId maximal_rec(NodeId a);
    NodeId minimal_rec(NodeId a);
    NodeId subset0_rec(NodeId a, Var v);
    NodeId subset1_rec(NodeId a, Var v);
    NodeId change_rec(NodeId a, Var v);
    bool contains_empty(NodeId a) const noexcept;

    // External reference bookkeeping (for GC roots).
    void ref_external(NodeId n);
    void unref_external(NodeId n) noexcept;
    void maybe_gc();

    // Unique table.
    void rehash(std::size_t new_capacity);
    static std::uint64_t triple_hash(Var v, NodeId lo, NodeId hi) noexcept;

    // Computed cache.
    struct CacheEntry {
        std::uint64_t key = ~0ULL;
        NodeId result = kEmpty;
    };
    static std::uint64_t cache_key(Op op, NodeId a, NodeId b) noexcept;
    bool cache_lookup(Op op, NodeId a, NodeId b, NodeId& out) const noexcept;
    void cache_store(Op op, NodeId a, NodeId b, NodeId result) noexcept;

    Var num_vars_;
    std::vector<Node> nodes_;
    std::vector<std::uint32_t> extref_;  // external reference counts, per node
    std::vector<NodeId> free_;           // freed node slots available for reuse

    std::vector<NodeId> table_;  // open-addressing unique table (0 = empty slot)
    std::size_t table_mask_ = 0;
    std::size_t table_entries_ = 0;

    std::vector<CacheEntry> cache_;
    std::size_t cache_mask_ = 0;
    mutable CacheStats cache_stats_;

    std::size_t gc_threshold_ = 1u << 18;
    bool gc_enabled_ = true;
};

}  // namespace ucp::zdd
