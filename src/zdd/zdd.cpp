#include "zdd/zdd.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/bignum.hpp"
#include "util/stats.hpp"

namespace ucp::zdd {

// ---------------------------------------------------------------------------
// Zdd handle
// ---------------------------------------------------------------------------

Zdd::Zdd(ZddManager* mgr, NodeId id) : mgr_(mgr), id_(id) {
    if (mgr_ != nullptr) mgr_->ref_external(id_);
}

Zdd::Zdd(const Zdd& other) : mgr_(other.mgr_), id_(other.id_) {
    if (mgr_ != nullptr) mgr_->ref_external(id_);
}

Zdd::Zdd(Zdd&& other) noexcept : mgr_(other.mgr_), id_(other.id_) {
    other.mgr_ = nullptr;
    other.id_ = kEmpty;
}

Zdd& Zdd::operator=(const Zdd& other) {
    if (this != &other) {
        Zdd tmp(other);
        std::swap(mgr_, tmp.mgr_);
        std::swap(id_, tmp.id_);
    }
    return *this;
}

Zdd& Zdd::operator=(Zdd&& other) noexcept {
    if (this != &other) {
        release();
        mgr_ = other.mgr_;
        id_ = other.id_;
        other.mgr_ = nullptr;
        other.id_ = kEmpty;
    }
    return *this;
}

Zdd::~Zdd() { release(); }

void Zdd::release() noexcept {
    if (mgr_ != nullptr) {
        mgr_->unref_external(id_);
        mgr_ = nullptr;
        id_ = kEmpty;
    }
}

// A default-constructed Zdd is the empty family with no manager; the
// operators honour that instead of dereferencing a null manager (count() and
// node_count() below already did).
Zdd Zdd::operator|(const Zdd& rhs) const {
    if (mgr_ == nullptr) return rhs;       // {} ∪ b = b
    if (rhs.mgr_ == nullptr) return *this;  // a ∪ {} = a
    return mgr_->union_(*this, rhs);
}
Zdd Zdd::operator&(const Zdd& rhs) const {
    if (mgr_ == nullptr || rhs.mgr_ == nullptr) return Zdd();  // a ∩ {} = {}
    return mgr_->intersect(*this, rhs);
}
Zdd Zdd::operator-(const Zdd& rhs) const {
    if (mgr_ == nullptr) return Zdd();      // {} − b = {}
    if (rhs.mgr_ == nullptr) return *this;  // a − {} = a
    return mgr_->diff(*this, rhs);
}
Zdd Zdd::operator*(const Zdd& rhs) const {
    if (mgr_ == nullptr || rhs.mgr_ == nullptr) return Zdd();  // a × {} = {}
    return mgr_->product(*this, rhs);
}

double Zdd::count() const { return mgr_ == nullptr ? 0.0 : mgr_->count(*this); }

std::size_t Zdd::node_count() const {
    return mgr_ == nullptr ? 0 : mgr_->node_count(*this);
}

// ---------------------------------------------------------------------------
// Manager: construction, unique table, cache
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kInitialTable = 1u << 12;
constexpr std::size_t kCacheSize = 1u << 16;
}  // namespace

ZddManager::ZddManager(Var num_vars) : num_vars_(num_vars) {
    UCP_REQUIRE(num_vars < kTermVar, "variable count out of range");
    nodes_.resize(2);  // terminals; var/lo/hi of terminals are never read
    nodes_[0] = {kTermVar, 0, 0};
    nodes_[1] = {kTermVar, 1, 1};
    extref_.resize(2, 0);
    table_.assign(kInitialTable, 0);
    table_mask_ = kInitialTable - 1;
    cache_.assign(kCacheSize, CacheEntry{});
    cache_mask_ = kCacheSize - 1;
}

ZddManager::~ZddManager() {
    stats::counter("zdd.cache_hits").add(cache_stats_.hits);
    stats::counter("zdd.cache_misses").add(cache_stats_.misses);
}

std::uint64_t ZddManager::triple_hash(Var v, NodeId lo, NodeId hi) noexcept {
    std::uint64_t h = (static_cast<std::uint64_t>(v) << 40) ^
                      (static_cast<std::uint64_t>(lo) << 20) ^ hi;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return h;
}

NodeId ZddManager::make(Var v, NodeId lo, NodeId hi) {
    if (hi == kEmpty) return lo;  // zero-suppression rule
    UCP_ASSERT(v < num_vars_);
    UCP_ASSERT(var_of(lo) > v && var_of(hi) > v);

    std::size_t idx = triple_hash(v, lo, hi) & table_mask_;
    while (true) {
        const NodeId slot = table_[idx];
        if (slot == 0) break;
        const Node& n = nodes_[slot];
        if (n.var == v && n.lo == lo && n.hi == hi) return slot;
        idx = (idx + 1) & table_mask_;
    }

    NodeId id;
    if (!free_.empty()) {
        id = free_.back();
        free_.pop_back();
        nodes_[id] = {v, lo, hi};
        extref_[id] = 0;
    } else {
        id = static_cast<NodeId>(nodes_.size());
        nodes_.push_back({v, lo, hi});
        extref_.push_back(0);
    }
    table_[idx] = id;
    ++table_entries_;
    if (table_entries_ * 4 > table_.size() * 3) rehash(table_.size() * 2);
    return id;
}

void ZddManager::rehash(std::size_t new_capacity) {
    std::vector<NodeId> old = std::move(table_);
    table_.assign(new_capacity, 0);
    table_mask_ = new_capacity - 1;
    for (const NodeId id : old) {
        if (id == 0) continue;
        const Node& n = nodes_[id];
        std::size_t idx = triple_hash(n.var, n.lo, n.hi) & table_mask_;
        while (table_[idx] != 0) idx = (idx + 1) & table_mask_;
        table_[idx] = id;
    }
}

std::uint64_t ZddManager::cache_key(Op op, NodeId a, NodeId b) noexcept {
    std::uint64_t h = (static_cast<std::uint64_t>(op) << 58) ^
                      (static_cast<std::uint64_t>(a) << 29) ^ b;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

bool ZddManager::cache_lookup(Op op, NodeId a, NodeId b, NodeId& out) const noexcept {
    const std::uint64_t key = cache_key(op, a, b);
    const CacheEntry& e = cache_[key & cache_mask_];
    if (e.key == key) {
        ++cache_stats_.hits;
        out = e.result;
        return true;
    }
    ++cache_stats_.misses;
    return false;
}

void ZddManager::cache_store(Op op, NodeId a, NodeId b, NodeId result) noexcept {
    const std::uint64_t key = cache_key(op, a, b);
    cache_[key & cache_mask_] = {key, result};
}

void ZddManager::ref_external(NodeId n) {
    UCP_ASSERT(n < extref_.size());
    ++extref_[n];
}

void ZddManager::unref_external(NodeId n) noexcept {
    if (n < extref_.size() && extref_[n] > 0) --extref_[n];
}

void ZddManager::maybe_gc() {
    if (gc_enabled_ && live_nodes() > gc_threshold_) {
        const std::size_t reclaimed = gc();
        // Grow the threshold if the working set is genuinely large, so GC
        // doesn't thrash.
        if (reclaimed < gc_threshold_ / 4) gc_threshold_ *= 2;
    }
}

std::size_t ZddManager::gc() {
    std::vector<bool> mark(nodes_.size(), false);
    mark[0] = mark[1] = true;

    std::vector<NodeId> stack;
    for (NodeId n = 2; n < nodes_.size(); ++n)
        if (extref_[n] > 0) stack.push_back(n);

    while (!stack.empty()) {
        const NodeId n = stack.back();
        stack.pop_back();
        if (mark[n]) continue;
        mark[n] = true;
        if (!mark[nodes_[n].lo]) stack.push_back(nodes_[n].lo);
        if (!mark[nodes_[n].hi]) stack.push_back(nodes_[n].hi);
    }

    // Sweep: everything unmarked and not already free goes to the free list.
    std::vector<bool> is_free(nodes_.size(), false);
    for (const NodeId f : free_) is_free[f] = true;
    std::size_t reclaimed = 0;
    for (NodeId n = 2; n < nodes_.size(); ++n) {
        if (!mark[n] && !is_free[n]) {
            free_.push_back(n);
            ++reclaimed;
        }
    }

    // Rebuild the unique table from live nodes and drop the cache (it may
    // reference dead nodes).
    std::fill(table_.begin(), table_.end(), 0);
    table_entries_ = 0;
    for (NodeId n = 2; n < nodes_.size(); ++n) {
        if (!mark[n]) continue;
        const Node& nd = nodes_[n];
        std::size_t idx = triple_hash(nd.var, nd.lo, nd.hi) & table_mask_;
        while (table_[idx] != 0) idx = (idx + 1) & table_mask_;
        table_[idx] = n;
        ++table_entries_;
    }
    std::fill(cache_.begin(), cache_.end(), CacheEntry{});
    return reclaimed;
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

Zdd ZddManager::single(Var v) {
    UCP_REQUIRE(v < num_vars_, "variable out of range");
    return handle(make(v, kEmpty, kBase));
}

Zdd ZddManager::set_of(const std::vector<Var>& vars) {
    std::vector<Var> sorted = vars;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    NodeId cur = kBase;
    for (const Var v : sorted) {
        UCP_REQUIRE(v < num_vars_, "variable out of range");
        UCP_REQUIRE(cur == kBase || v < var_of(cur), "duplicate variable in set");
        cur = make(v, kEmpty, cur);
    }
    return handle(cur);
}

Zdd ZddManager::power_set(const std::vector<Var>& vars) {
    std::vector<Var> sorted = vars;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    NodeId cur = kBase;
    for (const Var v : sorted) {
        UCP_REQUIRE(v < num_vars_, "variable out of range");
        cur = make(v, cur, cur);
    }
    return handle(cur);
}

// ---------------------------------------------------------------------------
// Core set operations
// ---------------------------------------------------------------------------

Zdd ZddManager::union_(const Zdd& a, const Zdd& b) {
    Zdd r = handle(union_rec(a.id(), b.id()));
    maybe_gc();
    return r;
}

NodeId ZddManager::union_rec(NodeId a, NodeId b) {
    if (a == b || b == kEmpty) return a;
    if (a == kEmpty) return b;
    if (a > b) std::swap(a, b);  // commutative: canonicalise the cache key
    NodeId cached;
    if (cache_lookup(Op::kUnion, a, b, cached)) return cached;

    const Var va = var_of(a), vb = var_of(b);
    NodeId r;
    if (va < vb) {
        r = make(va, union_rec(nodes_[a].lo, b), nodes_[a].hi);
    } else if (vb < va) {
        r = make(vb, union_rec(a, nodes_[b].lo), nodes_[b].hi);
    } else {
        r = make(va, union_rec(nodes_[a].lo, nodes_[b].lo),
                 union_rec(nodes_[a].hi, nodes_[b].hi));
    }
    cache_store(Op::kUnion, a, b, r);
    return r;
}

Zdd ZddManager::intersect(const Zdd& a, const Zdd& b) {
    Zdd r = handle(intersect_rec(a.id(), b.id()));
    maybe_gc();
    return r;
}

NodeId ZddManager::intersect_rec(NodeId a, NodeId b) {
    if (a == b) return a;
    if (a == kEmpty || b == kEmpty) return kEmpty;
    if (a > b) std::swap(a, b);
    // One operand terminal-1: keep ∅ if the other family contains it.
    if (a == kBase) return contains_empty(b) ? kBase : kEmpty;
    NodeId cached;
    if (cache_lookup(Op::kIntersect, a, b, cached)) return cached;

    const Var va = var_of(a), vb = var_of(b);
    NodeId r;
    if (va < vb) {
        r = intersect_rec(nodes_[a].lo, b);
    } else if (vb < va) {
        r = intersect_rec(a, nodes_[b].lo);
    } else {
        r = make(va, intersect_rec(nodes_[a].lo, nodes_[b].lo),
                 intersect_rec(nodes_[a].hi, nodes_[b].hi));
    }
    cache_store(Op::kIntersect, a, b, r);
    return r;
}

Zdd ZddManager::diff(const Zdd& a, const Zdd& b) {
    Zdd r = handle(diff_rec(a.id(), b.id()));
    maybe_gc();
    return r;
}

NodeId ZddManager::diff_rec(NodeId a, NodeId b) {
    if (a == kEmpty || a == b) return kEmpty;
    if (b == kEmpty) return a;
    if (a == kBase) return contains_empty(b) ? kEmpty : kBase;
    NodeId cached;
    if (cache_lookup(Op::kDiff, a, b, cached)) return cached;

    const Var va = var_of(a), vb = var_of(b);
    NodeId r;
    if (va < vb) {
        r = make(va, diff_rec(nodes_[a].lo, b), nodes_[a].hi);
    } else if (vb < va) {
        r = diff_rec(a, nodes_[b].lo);
    } else {
        r = make(va, diff_rec(nodes_[a].lo, nodes_[b].lo),
                 diff_rec(nodes_[a].hi, nodes_[b].hi));
    }
    cache_store(Op::kDiff, a, b, r);
    return r;
}

bool ZddManager::contains_empty(NodeId a) const noexcept {
    while (a >= 2) a = nodes_[a].lo;
    return a == kBase;
}

Zdd ZddManager::subset0(const Zdd& a, Var v) {
    UCP_REQUIRE(v < num_vars_, "variable out of range");
    Zdd r = handle(subset0_rec(a.id(), v));
    maybe_gc();
    return r;
}

NodeId ZddManager::subset0_rec(NodeId a, Var v) {
    const Var va = var_of(a);
    if (va > v) return a;  // v cannot occur below (ordering) — includes terminals
    if (va == v) return nodes_[a].lo;
    NodeId cached;
    if (cache_lookup(Op::kSubset0, a, static_cast<NodeId>(v), cached)) return cached;
    const NodeId r =
        make(va, subset0_rec(nodes_[a].lo, v), subset0_rec(nodes_[a].hi, v));
    cache_store(Op::kSubset0, a, static_cast<NodeId>(v), r);
    return r;
}

Zdd ZddManager::subset1(const Zdd& a, Var v) {
    UCP_REQUIRE(v < num_vars_, "variable out of range");
    Zdd r = handle(subset1_rec(a.id(), v));
    maybe_gc();
    return r;
}

NodeId ZddManager::subset1_rec(NodeId a, Var v) {
    const Var va = var_of(a);
    if (va > v) return kEmpty;
    if (va == v) return nodes_[a].hi;
    NodeId cached;
    if (cache_lookup(Op::kSubset1, a, static_cast<NodeId>(v), cached)) return cached;
    const NodeId r =
        make(va, subset1_rec(nodes_[a].lo, v), subset1_rec(nodes_[a].hi, v));
    cache_store(Op::kSubset1, a, static_cast<NodeId>(v), r);
    return r;
}

Zdd ZddManager::change(const Zdd& a, Var v) {
    UCP_REQUIRE(v < num_vars_, "variable out of range");
    Zdd r = handle(change_rec(a.id(), v));
    maybe_gc();
    return r;
}

NodeId ZddManager::change_rec(NodeId a, Var v) {
    const Var va = var_of(a);
    if (va > v) return make(v, kEmpty, a);
    if (va == v) return make(v, nodes_[a].hi, nodes_[a].lo);
    NodeId cached;
    if (cache_lookup(Op::kChange, a, static_cast<NodeId>(v), cached)) return cached;
    const NodeId r = make(va, change_rec(nodes_[a].lo, v), change_rec(nodes_[a].hi, v));
    cache_store(Op::kChange, a, static_cast<NodeId>(v), r);
    return r;
}

// ---------------------------------------------------------------------------
// Cube-set operations
// ---------------------------------------------------------------------------

Zdd ZddManager::product(const Zdd& a, const Zdd& b) {
    Zdd r = handle(product_rec(a.id(), b.id()));
    maybe_gc();
    return r;
}

NodeId ZddManager::product_rec(NodeId a, NodeId b) {
    if (a == kEmpty || b == kEmpty) return kEmpty;
    if (a == kBase) return b;
    if (b == kBase) return a;
    if (a > b) std::swap(a, b);  // commutative
    NodeId cached;
    if (cache_lookup(Op::kProduct, a, b, cached)) return cached;

    const Var va = var_of(a), vb = var_of(b);
    const Var v = std::min(va, vb);
    const NodeId a0 = va == v ? nodes_[a].lo : a;
    const NodeId a1 = va == v ? nodes_[a].hi : kEmpty;
    const NodeId b0 = vb == v ? nodes_[b].lo : b;
    const NodeId b1 = vb == v ? nodes_[b].hi : kEmpty;

    // (v·a1 + a0)(v·b1 + b0) = v·(a1 b1 + a1 b0 + a0 b1) + a0 b0
    const NodeId p11 = product_rec(a1, b1);
    const NodeId p10 = product_rec(a1, b0);
    const NodeId p01 = product_rec(a0, b1);
    const NodeId p00 = product_rec(a0, b0);
    const NodeId hi = union_rec(p11, union_rec(p10, p01));
    const NodeId r = make(v, p00, hi);
    cache_store(Op::kProduct, a, b, r);
    return r;
}

Zdd ZddManager::sup_set(const Zdd& a, const Zdd& b) {
    Zdd r = handle(sup_set_rec(a.id(), b.id()));
    maybe_gc();
    return r;
}

NodeId ZddManager::sup_set_rec(NodeId a, NodeId b) {
    if (a == kEmpty || b == kEmpty) return kEmpty;
    if (b == kBase) return a;  // every set contains ∅
    if (a == kBase) return contains_empty(b) ? kBase : kEmpty;  // ∅ ⊇ g iff g = ∅
    if (a == b) return a;
    NodeId cached;
    if (cache_lookup(Op::kSupSet, a, b, cached)) return cached;

    const Var va = var_of(a), vb = var_of(b);
    NodeId r;
    if (va < vb) {
        // v ∈ a-sets only: f = {v}∪f' ⊇ g iff f' ⊇ g (v ∉ g).
        r = make(va, sup_set_rec(nodes_[a].lo, b), sup_set_rec(nodes_[a].hi, b));
    } else if (vb < va) {
        // g containing v cannot be ⊆ any f (v ∉ f): only g ∈ b.lo matter.
        r = sup_set_rec(a, nodes_[b].lo);
    } else {
        const NodeId hi = union_rec(sup_set_rec(nodes_[a].hi, nodes_[b].hi),
                                    sup_set_rec(nodes_[a].hi, nodes_[b].lo));
        r = make(va, sup_set_rec(nodes_[a].lo, nodes_[b].lo), hi);
    }
    cache_store(Op::kSupSet, a, b, r);
    return r;
}

Zdd ZddManager::sub_set(const Zdd& a, const Zdd& b) {
    Zdd r = handle(sub_set_rec(a.id(), b.id()));
    maybe_gc();
    return r;
}

NodeId ZddManager::sub_set_rec(NodeId a, NodeId b) {
    if (a == kEmpty || b == kEmpty) return kEmpty;
    if (a == kBase) return kBase;  // ∅ ⊆ any g, and b ≠ ∅ here
    if (a == b) return a;
    if (b == kBase) return contains_empty(a) ? kBase : kEmpty;
    NodeId cached;
    if (cache_lookup(Op::kSubSet, a, b, cached)) return cached;

    const Var va = var_of(a), vb = var_of(b);
    NodeId r;
    if (va < vb) {
        // f containing v cannot be ⊆ any g (v ∉ g).
        r = sub_set_rec(nodes_[a].lo, b);
    } else if (vb < va) {
        // g = {v}∪g': f ⊆ g iff f ⊆ g' (v ∉ f).
        r = sub_set_rec(a, union_rec(nodes_[b].lo, nodes_[b].hi));
    } else {
        const NodeId lo = sub_set_rec(nodes_[a].lo,
                                      union_rec(nodes_[b].lo, nodes_[b].hi));
        r = make(va, lo, sub_set_rec(nodes_[a].hi, nodes_[b].hi));
    }
    cache_store(Op::kSubSet, a, b, r);
    return r;
}

Zdd ZddManager::maximal(const Zdd& a) {
    Zdd r = handle(maximal_rec(a.id()));
    maybe_gc();
    return r;
}

NodeId ZddManager::maximal_rec(NodeId a) {
    if (a <= kBase) return a;
    NodeId cached;
    if (cache_lookup(Op::kMaximal, a, a, cached)) return cached;
    const Var v = nodes_[a].var;
    const NodeId max_hi = maximal_rec(nodes_[a].hi);
    const NodeId max_lo = maximal_rec(nodes_[a].lo);
    // A set without v is maximal iff maximal in the lo-branch and not contained
    // in any set of the hi-branch (which would strictly contain it via v).
    const NodeId dominated = sub_set_rec(max_lo, nodes_[a].hi);
    const NodeId r = make(v, diff_rec(max_lo, dominated), max_hi);
    cache_store(Op::kMaximal, a, a, r);
    return r;
}

Zdd ZddManager::minimal(const Zdd& a) {
    Zdd r = handle(minimal_rec(a.id()));
    maybe_gc();
    return r;
}

NodeId ZddManager::minimal_rec(NodeId a) {
    if (a <= kBase) return a;
    NodeId cached;
    if (cache_lookup(Op::kMinimal, a, a, cached)) return cached;
    const Var v = nodes_[a].var;
    const NodeId min_lo = minimal_rec(nodes_[a].lo);
    const NodeId min_hi = minimal_rec(nodes_[a].hi);
    // A set containing v is minimal iff minimal in the hi-branch and not a
    // superset of any set in the lo-branch.
    const NodeId dominating = sup_set_rec(min_hi, nodes_[a].lo);
    const NodeId r = make(v, min_lo, diff_rec(min_hi, dominating));
    cache_store(Op::kMinimal, a, a, r);
    return r;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

double ZddManager::count(const Zdd& a) {
    std::unordered_map<NodeId, double> memo;
    const std::function<double(NodeId)> rec = [&](NodeId n) -> double {
        if (n == kEmpty) return 0.0;
        if (n == kBase) return 1.0;
        const auto it = memo.find(n);
        if (it != memo.end()) return it->second;
        const double c = rec(nodes_[n].lo) + rec(nodes_[n].hi);
        memo.emplace(n, c);
        return c;
    };
    return rec(a.id());
}

std::string ZddManager::count_exact(const Zdd& a) const {
    std::unordered_map<NodeId, BigUint> memo;
    const std::function<BigUint(NodeId)> rec = [&](NodeId n) -> BigUint {
        if (n == kEmpty) return BigUint(0);
        if (n == kBase) return BigUint(1);
        const auto it = memo.find(n);
        if (it != memo.end()) return it->second;
        BigUint c = rec(nodes_[n].lo) + rec(nodes_[n].hi);
        memo.emplace(n, c);
        return c;
    };
    return rec(a.id()).to_string();
}

std::size_t ZddManager::node_count(const Zdd& a) const {
    std::unordered_set<NodeId> seen;
    std::vector<NodeId> stack{a.id()};
    while (!stack.empty()) {
        const NodeId n = stack.back();
        stack.pop_back();
        if (n < 2 || !seen.insert(n).second) continue;
        stack.push_back(nodes_[n].lo);
        stack.push_back(nodes_[n].hi);
    }
    return seen.size();
}

void ZddManager::for_each_set(
    const Zdd& a, const std::function<void(const std::vector<Var>&)>& fn) const {
    std::vector<Var> path;
    const std::function<void(NodeId)> rec = [&](NodeId n) {
        if (n == kEmpty) return;
        if (n == kBase) {
            fn(path);
            return;
        }
        path.push_back(nodes_[n].var);
        rec(nodes_[n].hi);
        path.pop_back();
        rec(nodes_[n].lo);
    };
    rec(a.id());
}

std::vector<Var> ZddManager::any_set(const Zdd& a) const {
    UCP_REQUIRE(!a.is_empty(), "any_set on empty family");
    std::vector<Var> out;
    NodeId n = a.id();
    while (n >= 2) {
        // Follow the lo-branch when possible (lexicographically smallest set);
        // take the hi-branch when lo is empty.
        if (nodes_[n].lo != kEmpty) {
            n = nodes_[n].lo;
        } else {
            out.push_back(nodes_[n].var);
            n = nodes_[n].hi;
        }
    }
    return out;
}

std::string ZddManager::to_dot(const Zdd& a, const std::string& name) const {
    std::ostringstream os;
    os << "digraph " << name << " {\n";
    os << "  t0 [shape=box,label=\"0\"]; t1 [shape=box,label=\"1\"];\n";
    std::unordered_set<NodeId> seen;
    const std::function<void(NodeId)> rec = [&](NodeId n) {
        if (n < 2 || !seen.insert(n).second) return;
        os << "  n" << n << " [label=\"x" << nodes_[n].var << "\"];\n";
        auto edge = [&](NodeId child, const char* style) {
            os << "  n" << n << " -> "
               << (child < 2 ? (child == 0 ? "t0" : "t1")
                             : "n" + std::to_string(child))
               << " [style=" << style << "];\n";
        };
        edge(nodes_[n].lo, "dashed");
        edge(nodes_[n].hi, "solid");
        rec(nodes_[n].lo);
        rec(nodes_[n].hi);
    };
    rec(a.id());
    if (a.id() < 2) {
        // Nothing else to draw for a terminal root.
    }
    os << "}\n";
    return os.str();
}

}  // namespace ucp::zdd
