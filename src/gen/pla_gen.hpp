// Synthetic PLA generators — the stand-ins for the Berkeley PLA benchmark
// tapes (see DESIGN.md §2). Families:
//   * random_pla     — random cubes with tunable literal density, output
//                      density and don't-care fraction (the main knob set);
//   * adder_pla      — n-bit adder (arithmetic flavour, à la max1024);
//   * mux_pla        — 2^k-way multiplexer (control-dominated, à la shift);
//   * majority_pla   — majority function (huge prime count per input count);
//   * parity_pla     — parity (all primes essential: empty cyclic core);
//   * interval_pla   — threshold/comparator functions (dense cyclic cores).
// All generators are deterministic in their parameters and seed.
#pragma once

#include <cstdint>

#include "pla/pla_io.hpp"

namespace ucp::gen {

struct RandomPlaOptions {
    std::uint32_t num_inputs = 8;
    std::uint32_t num_outputs = 1;
    std::uint32_t num_cubes = 20;
    double literal_prob = 0.6;   ///< probability an input is bound in a cube
    double output_prob = 0.6;    ///< probability an output is asserted
    double dc_fraction = 0.15;   ///< fraction of cubes going to the DC plane
    std::uint64_t seed = 1;
};

pla::Pla random_pla(const RandomPlaOptions& opt);

/// bits-bit adder: 2·bits inputs, bits+1 outputs (sum + carry).
pla::Pla adder_pla(std::uint32_t bits);

/// 2^sel_bits-way multiplexer: sel_bits + 2^sel_bits inputs, 1 output.
pla::Pla mux_pla(std::uint32_t sel_bits);

/// Majority of n inputs (n odd recommended), 1 output.
pla::Pla majority_pla(std::uint32_t n);

/// Parity of n inputs, 1 output. All primes are essential minterms.
pla::Pla parity_pla(std::uint32_t n);

/// Comparator: output k asserted when the n-bit input value is ≥ threshold_k,
/// thresholds spread over the range. Produces overlapping interval structure.
pla::Pla interval_pla(std::uint32_t n, std::uint32_t num_outputs);

}  // namespace ucp::gen
