// Table-driven diagnostics test over tests/corpus/ — every malformed PLA in
// the corpus must be rejected with Status::kBadInput and a diagnostic that
// points at the right line, and the parser must never throw on any of them.
#include <gtest/gtest.h>

#include <string>

#include "pla/pla_io.hpp"
#include "util/status.hpp"

namespace {

using ucp::Status;
using ucp::pla::Pla;
using ucp::pla::PlaDiagnostic;

std::string corpus(const std::string& file) {
    return std::string(UCP_TEST_CORPUS_DIR) + "/" + file;
}

struct CorpusCase {
    const char* file;
    std::size_t line;          ///< expected diag.line (0 = don't check)
    std::size_t column;        ///< expected diag.column (0 = don't check)
    const char* message_part;  ///< substring expected in diag.message
};

// One row per corpus file; columns follow the 1-based convention of the
// diagnostics (column 0 = error not tied to a character).
const CorpusCase kCases[] = {
    {"truncated_directive.pla", 1, 1, ".i needs a value"},
    {"bad_i_zero.pla", 1, 4, ".i must be a positive integer"},
    {"bad_i_negative.pla", 1, 4, ".i must be a positive integer"},
    {"bad_i_nonnumeric.pla", 1, 4, ".i must be a positive integer"},
    {"bad_i_huge.pla", 1, 4, ".i must be a positive integer"},
    {"bad_i_trailing.pla", 1, 4, ".i must be a positive integer"},
    {"bad_o_nonnumeric.pla", 2, 4, ".o must be a positive integer"},
    {"cube_before_i.pla", 2, 1, "cube line before .i"},
    {"width_mismatch.pla", 4, 1, "cube width mismatch"},
    {"bad_input_char.pla", 3, 2, "bad input character '*'"},
    {"bad_output_char.pla", 3, 6, "bad output character 'z'"},
    {"missing_i.pla", 3, 0, "no .i directive"},
    {"empty.pla", 1, 0, "no .i directive"},
    {"comment_only.pla", 2, 0, "no .i directive"},
};

TEST(PlaCorpus, MalformedFilesAreDiagnosedNotThrown) {
    for (const CorpusCase& c : kCases) {
        SCOPED_TRACE(c.file);
        Pla pla;
        PlaDiagnostic diag;
        Status st = Status::kOk;
        ASSERT_NO_THROW(st = ucp::pla::parse_pla_file(corpus(c.file), pla, diag));
        EXPECT_EQ(st, Status::kBadInput);
        EXPECT_EQ(diag.status, Status::kBadInput);
        if (c.line > 0) EXPECT_EQ(diag.line, c.line);
        if (c.column > 0) EXPECT_EQ(diag.column, c.column);
        EXPECT_NE(diag.message.find(c.message_part), std::string::npos)
            << "got: " << diag.message;
        // The rendered form carries the location for error messages.
        const std::string rendered = diag.to_string(c.file);
        EXPECT_NE(rendered.find("line"), std::string::npos) << rendered;
    }
}

TEST(PlaCorpus, GoodFileStillParses) {
    Pla pla;
    PlaDiagnostic diag;
    EXPECT_EQ(ucp::pla::parse_pla_file(corpus("good_minimal.pla"), pla, diag),
              Status::kOk);
    EXPECT_EQ(diag.status, Status::kOk);
    EXPECT_EQ(pla.space().num_inputs, 2u);
    EXPECT_EQ(pla.on.size(), 2u);
}

TEST(PlaCorpus, ThrowingWrapperReportsLocation) {
    try {
        (void)ucp::pla::read_pla_file(corpus("bad_input_char.pla"));
        FAIL() << "expected BadInputError";
    } catch (const ucp::BadInputError& e) {
        EXPECT_EQ(e.status(), Status::kBadInput);
        const std::string what = e.what();
        EXPECT_NE(what.find("line 3"), std::string::npos) << what;
        EXPECT_NE(what.find("col 2"), std::string::npos) << what;
    }
}

TEST(PlaCorpus, UnopenableFile) {
    Pla pla;
    PlaDiagnostic diag;
    // Distinct from malformed *content*: a path that cannot be opened is a
    // filesystem failure, reported as kIoError (the minimize_pla exit-2
    // contract keys off this distinction).
    EXPECT_EQ(ucp::pla::parse_pla_file(corpus("does_not_exist.pla"), pla, diag),
              Status::kIoError);
    EXPECT_EQ(diag.status, Status::kIoError);
    EXPECT_EQ(diag.line, 0u);
    EXPECT_NE(diag.message.find("cannot open"), std::string::npos);
}

TEST(PlaCorpus, OverlongLineRejected) {
    // A multi-megabyte "line" is corrupt or hostile input, not a PLA. Built
    // in memory so the corpus directory stays reviewable.
    std::string text = ".i 1\n.o 1\n";
    text += std::string((std::size_t{1} << 20) + 1, '0');
    text += "\n";
    Pla pla;
    PlaDiagnostic diag;
    EXPECT_EQ(ucp::pla::parse_pla_string(text, pla, diag), Status::kBadInput);
    EXPECT_EQ(diag.line, 3u);
    EXPECT_NE(diag.message.find("maximum length"), std::string::npos);
}

}  // namespace
