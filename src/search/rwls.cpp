#include "search/rwls.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace ucp::search {

using cov::Cost;
using cov::CoverMatrix;
using cov::Index;
using cov::SubMatrix;

namespace {

constexpr Index kNone = static_cast<Index>(-1);

/// The search engine over one matrix view. `Matrix` is CoverMatrix or
/// SubMatrix; everything runs on base indices and skips dead slots, like the
/// Lagrangian engines.
template <class Matrix>
class Engine {
public:
    Engine(const Matrix& m, const RwlsOptions& opt, RwlsWorkspace& ws)
        : m_(m), opt_(opt), ws_(ws), rng_(opt.seed) {}

    RwlsResult run() {
        static stats::Counter& c_calls = stats::counter("rwls.calls");
        static stats::Counter& c_steps = stats::counter("rwls.steps");
        static stats::Counter& c_improve = stats::counter("rwls.improvements");
        const stats::ScopedTimer phase_timer("rwls.seconds");
        TRACE_SPAN("rwls");
        c_calls.add();

        Timer timer;
        RwlsResult out;
        init_state();
        seed_solution();

        Cost best_cost = cur_cost_;
        ws_.best = ws_.solution;  // feasible by construction
        const double lb = static_cast<double>(opt_.target_lower_bound);

        std::uint64_t step = 0;
        while (true) {
            if (opt_.governor != nullptr) {
                const Status st = opt_.governor->charge_iteration();
                if (st != Status::kOk) {
                    out.status = st;
                    break;
                }
            }
            if (ws_.uncovered.empty()) {
                strip_redundant();
                if (cur_cost_ < best_cost) {
                    best_cost = cur_cost_;
                    ws_.best = ws_.solution;
                    ++out.improvements;
                    TRACE_ITER("rwls", static_cast<std::int64_t>(step), lb,
                               static_cast<double>(best_cost),
                               static_cast<double>(cur_cost_),
                               static_cast<std::uint64_t>(ws_.uncovered.size()),
                               static_cast<std::uint64_t>(ws_.solution.size()),
                               0.0);
                }
                if (best_cost <= opt_.target_lower_bound) break;
                if (opt_.max_steps != 0 && step >= opt_.max_steps) break;
                // Dive: drop the least-useful column and keep searching.
                const Index u = pick_removal();
                if (u == kNone) break;  // empty cover cannot improve
                remove_col(u);
                ws_.stamp[u] = step;
                ws_.tabu_until[u] = step + 1 + opt_.tabu_tenure;
            } else {
                if (opt_.max_steps != 0 && step >= opt_.max_steps) break;
                // Swap: remove the highest-score solution column, then cover
                // a random uncovered row with its best non-tabu column.
                const Index u = pick_removal();
                if (u != kNone) {
                    remove_col(u);
                    ws_.stamp[u] = step;
                    ws_.tabu_until[u] = step + 1 + opt_.tabu_tenure;
                }
                const Index r = ws_.uncovered[static_cast<std::size_t>(
                    rng_.below(ws_.uncovered.size()))];
                const Index v = pick_addition(r, step);
                UCP_ASSERT(v != kNone);  // every row has a covering column
                add_col(v);
                ws_.stamp[v] = step;
            }
            bump_weights();
            ++step;
            if (opt_.audit_every != 0 && step % opt_.audit_every == 0) {
                ++out.audits;
                out.audit_mismatches += audit_scores();
            }
            if ((step & 127) == 0)
                TRACE_ITER("rwls", static_cast<std::int64_t>(step), lb,
                           static_cast<double>(best_cost),
                           static_cast<double>(cur_cost_),
                           static_cast<std::uint64_t>(ws_.uncovered.size()),
                           static_cast<std::uint64_t>(ws_.solution.size()),
                           0.0);
        }

        out.steps = step;
        c_steps.add(step);
        c_improve.add(out.improvements);
        out.solution = ws_.best;
        std::sort(out.solution.begin(), out.solution.end());
        out.cost = best_cost;
        out.seconds = timer.seconds();
        return out;
    }

private:
    // ---- state construction -----------------------------------------------
    void init_state() {
        const std::size_t rows = m_.num_rows();
        const std::size_t cols = m_.num_cols();
        rwls_fit(ws_.weight, rows);
        rwls_fit(ws_.cover_count, rows);
        rwls_fit(ws_.uncovered_pos, rows);
        rwls_fit(ws_.score, cols);
        rwls_fit(ws_.in_solution, cols);
        rwls_fit(ws_.tabu_until, cols);
        rwls_fit(ws_.stamp, cols);
        rwls_fit(ws_.solution_pos, cols);
        rwls_fit(ws_.uncovered, rows);
        ws_.uncovered.clear();
        rwls_fit(ws_.solution, cols);
        ws_.solution.clear();
        for (std::size_t i = 0; i < rows; ++i) {
            ws_.weight[i] = 1;
            ws_.cover_count[i] = 0;
            ws_.uncovered_pos[i] = kNone;
            if (m_.row_alive(static_cast<Index>(i)))
                uncovered_add(static_cast<Index>(i));
        }
        for (std::size_t j = 0; j < cols; ++j) {
            ws_.in_solution[j] = 0;
            ws_.tabu_until[j] = 0;
            ws_.stamp[j] = 0;
            ws_.solution_pos[j] = kNone;
            // Initial gain: every alive row is uncovered with weight 1.
            ws_.score[j] = m_.col_alive(static_cast<Index>(j))
                               ? static_cast<std::int64_t>(
                                     m_.live_col_size(static_cast<Index>(j)))
                               : 0;
        }
        cur_cost_ = 0;
    }

    /// Installs the warm start (if any), then greedily covers whatever is
    /// still uncovered. Postcondition: the candidate is a feasible cover.
    void seed_solution() {
        for (const Index j : opt_.initial) {
            if (j >= m_.num_cols() || !m_.col_alive(j)) continue;
            if (ws_.in_solution[j] != 0) continue;
            add_col(j);
        }
        while (!ws_.uncovered.empty()) {
            Index pick = kNone;
            for (Index j = 0; j < m_.num_cols(); ++j) {
                if (!m_.col_alive(j) || ws_.in_solution[j] != 0) continue;
                if (ws_.score[j] <= 0) continue;
                if (pick == kNone || gain_better(j, pick)) pick = j;
            }
            UCP_REQUIRE(pick != kNone,
                        "rwls: matrix has an uncoverable live row");
            add_col(pick);
        }
        strip_redundant();
    }

    // ---- incremental moves (the score invariant lives here) ---------------
    /// Adds column v to the candidate. Scores stay exact: columns covering a
    /// newly-covered row lose that row's weight from their gain; a row going
    /// from one to two coverers releases its weight from the old unique
    /// coverer's loss; v's own loss is the weight of the rows it now covers
    /// alone.
    void add_col(Index v) {
        UCP_ASSERT(ws_.in_solution[v] == 0);
        std::int64_t loss_v = 0;
        for (const Index i : m_.col(v)) {
            if (!m_.row_alive(i)) continue;
            const Index old = ws_.cover_count[i]++;
            if (old == 0) {
                uncovered_remove(i);
                loss_v += ws_.weight[i];
                for (const Index j2 : m_.row(i)) {
                    if (j2 == v || !m_.col_alive(j2)) continue;
                    if (ws_.in_solution[j2] == 0) ws_.score[j2] -= ws_.weight[i];
                }
            } else if (old == 1) {
                for (const Index j2 : m_.row(i)) {
                    if (ws_.in_solution[j2] != 0) {
                        ws_.score[j2] += ws_.weight[i];
                        break;
                    }
                }
            }
        }
        ws_.in_solution[v] = 1;
        ws_.score[v] = -loss_v;
        ws_.solution_pos[v] = static_cast<Index>(ws_.solution.size());
        ws_.solution.push_back(v);
        cur_cost_ += m_.cost(v);
    }

    /// Removes column u. The mirror image of add_col; u's score flips sign in
    /// place (its loss rows are exactly the rows it now gains).
    void remove_col(Index u) {
        UCP_ASSERT(ws_.in_solution[u] != 0);
        ws_.in_solution[u] = 0;
        const Index pos = ws_.solution_pos[u];
        const Index last = ws_.solution.back();
        ws_.solution[pos] = last;
        ws_.solution_pos[last] = pos;
        ws_.solution.pop_back();
        ws_.solution_pos[u] = kNone;
        ws_.score[u] = -ws_.score[u];
        for (const Index i : m_.col(u)) {
            if (!m_.row_alive(i)) continue;
            const Index old = ws_.cover_count[i]--;
            if (old == 1) {
                uncovered_add(i);
                for (const Index j2 : m_.row(i)) {
                    if (j2 == u || !m_.col_alive(j2)) continue;
                    if (ws_.in_solution[j2] == 0) ws_.score[j2] += ws_.weight[i];
                }
            } else if (old == 2) {
                for (const Index j2 : m_.row(i)) {
                    if (ws_.in_solution[j2] != 0) {
                        ws_.score[j2] -= ws_.weight[i];
                        break;
                    }
                }
            }
        }
        cur_cost_ -= m_.cost(u);
    }

    /// w_i += 1 on every uncovered row: the rows the search keeps failing on
    /// get heavier, and every column covering them gains accordingly (no
    /// solution column covers an uncovered row, so no loss changes).
    void bump_weights() {
        for (const Index i : ws_.uncovered) {
            ++ws_.weight[i];
            for (const Index j2 : m_.row(i)) {
                if (!m_.col_alive(j2)) continue;
                ws_.score[j2] += 1;
            }
        }
    }

    /// Strips zero-loss (redundant) columns, most expensive first. Keeps the
    /// candidate feasible; scores stay exact through remove_col.
    void strip_redundant() {
        for (;;) {
            Index pick = kNone;
            for (const Index j : ws_.solution) {
                if (ws_.score[j] != 0) continue;
                if (pick == kNone || m_.cost(j) > m_.cost(pick) ||
                    (m_.cost(j) == m_.cost(pick) && j < pick))
                    pick = j;
            }
            if (pick == kNone) return;
            remove_col(pick);
        }
    }

    // ---- move selection ----------------------------------------------------
    /// Solution column to remove: max score (min loss), ties to the higher
    /// cost, then the older stamp, then the lower index — a total order, so
    /// the pick is independent of the solution list's internal order.
    [[nodiscard]] Index pick_removal() const {
        Index pick = kNone;
        for (const Index j : ws_.solution) {
            if (pick == kNone) {
                pick = j;
                continue;
            }
            if (ws_.score[j] != ws_.score[pick]) {
                if (ws_.score[j] > ws_.score[pick]) pick = j;
            } else if (m_.cost(j) != m_.cost(pick)) {
                if (m_.cost(j) > m_.cost(pick)) pick = j;
            } else if (ws_.stamp[j] != ws_.stamp[pick]) {
                if (ws_.stamp[j] < ws_.stamp[pick]) pick = j;
            } else if (j < pick) {
                pick = j;
            }
        }
        return pick;
    }

    /// True when candidate a's gain-per-cost beats b's (cross-multiplied so
    /// the comparison stays in exact integer arithmetic), with ties to the
    /// older stamp then the lower index.
    [[nodiscard]] bool gain_better(Index a, Index b) const {
        const std::int64_t lhs = ws_.score[a] * m_.cost(b);
        const std::int64_t rhs = ws_.score[b] * m_.cost(a);
        if (lhs != rhs) return lhs > rhs;
        if (ws_.stamp[a] != ws_.stamp[b]) return ws_.stamp[a] < ws_.stamp[b];
        return a < b;
    }

    /// Column to add for uncovered row r: best gain-per-cost among the
    /// non-tabu columns covering r; if every candidate is tabu, tabu is
    /// ignored (the aspiration fallback — the step must cover r).
    [[nodiscard]] Index pick_addition(Index r, std::uint64_t step) const {
        Index pick = kNone;
        bool pick_tabu = true;
        for (const Index j : m_.row(r)) {
            if (!m_.col_alive(j) || ws_.in_solution[j] != 0) continue;
            const bool tabu = ws_.tabu_until[j] > step;
            if (pick == kNone || (pick_tabu && !tabu) ||
                (pick_tabu == tabu && gain_better(j, pick))) {
                pick = j;
                pick_tabu = tabu;
            }
        }
        return pick;
    }

    // ---- uncovered-row bookkeeping (swap-remove, O(1)) ---------------------
    void uncovered_add(Index i) {
        ws_.uncovered_pos[i] = static_cast<Index>(ws_.uncovered.size());
        ws_.uncovered.push_back(i);
    }
    void uncovered_remove(Index i) {
        const Index pos = ws_.uncovered_pos[i];
        const Index last = ws_.uncovered.back();
        ws_.uncovered[pos] = last;
        ws_.uncovered_pos[last] = pos;
        ws_.uncovered.pop_back();
        ws_.uncovered_pos[i] = kNone;
    }

    // ---- differential audit -------------------------------------------------
    /// Recomputes every score from scratch and returns the number of columns
    /// whose incremental score disagrees. 0 is the invariant.
    [[nodiscard]] std::uint64_t audit_scores() {
        rwls_fit(ws_.audit_score, m_.num_cols());
        std::fill(ws_.audit_score.begin(), ws_.audit_score.end(),
                  std::int64_t{0});
        for (Index i = 0; i < m_.num_rows(); ++i) {
            if (!m_.row_alive(i)) continue;
            if (ws_.cover_count[i] == 0) {
                for (const Index j : m_.row(i)) {
                    if (!m_.col_alive(j) || ws_.in_solution[j] != 0) continue;
                    ws_.audit_score[j] += ws_.weight[i];
                }
            } else if (ws_.cover_count[i] == 1) {
                for (const Index j : m_.row(i)) {
                    if (ws_.in_solution[j] != 0) {
                        ws_.audit_score[j] -= ws_.weight[i];
                        break;
                    }
                }
            }
        }
        std::uint64_t mismatches = 0;
        for (Index j = 0; j < m_.num_cols(); ++j)
            if (m_.col_alive(j) && ws_.audit_score[j] != ws_.score[j])
                ++mismatches;
        return mismatches;
    }

    const Matrix& m_;
    const RwlsOptions& opt_;
    RwlsWorkspace& ws_;
    Rng rng_;
    Cost cur_cost_ = 0;
};

}  // namespace

RwlsResult rwls_improve(const CoverMatrix& m, const RwlsOptions& opt,
                        RwlsWorkspace& ws) {
    return Engine<CoverMatrix>(m, opt, ws).run();
}

RwlsResult rwls_improve(const SubMatrix& m, const RwlsOptions& opt,
                        RwlsWorkspace& ws) {
    return Engine<SubMatrix>(m, opt, ws).run();
}

RwlsResult rwls_improve(const CoverMatrix& m, const RwlsOptions& opt) {
    RwlsWorkspace ws;
    return rwls_improve(m, opt, ws);
}

}  // namespace ucp::search
