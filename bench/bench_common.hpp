// Shared helpers for the paper-table benchmark binaries.
//
// Every bench prints (1) our measured table on the synthetic stand-in
// instances (DESIGN.md §2 documents the substitution) and (2) the values the
// paper reports for the original Berkeley instances, so the *shape* of the
// comparison can be eyeballed row by row. Absolute values are not expected to
// match — the instances differ and the paper's machine was an UltraSparc30.
#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "espresso/espresso.hpp"
#include "gen/suites.hpp"
#include "solver/two_level.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ucp::bench {

/// Peak resident set size in MB (Linux VmHWM — monotone over the process
/// lifetime, which is how the paper's M column behaves across a run too).
inline double peak_rss_mb() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            std::istringstream is(line.substr(6));
            double kb = 0;
            is >> kb;
            return kb / 1024.0;
        }
    }
    return 0.0;
}

struct PipelineRow {
    std::string name;
    solver::TwoLevelResult scg;
    std::size_t espresso_sol = 0;
    double espresso_seconds = 0.0;
    std::size_t strong_sol = 0;
    double strong_seconds = 0.0;
    double rss_mb = 0.0;
    bool espresso_verified = true;
};

/// Runs ZDD_SCG + Espresso (normal and strong) on one instance.
inline PipelineRow run_pipeline(const gen::SuiteEntry& entry,
                                bool run_espresso = true) {
    PipelineRow row;
    row.name = entry.name;
    row.scg = solver::minimize_two_level(entry.pla);
    if (run_espresso) {
        {
            Timer t;
            const auto r = esp::espresso(entry.pla);
            row.espresso_seconds = t.seconds();
            row.espresso_sol = r.cover.size();
            row.espresso_verified =
                solver::verify_equivalence(entry.pla, r.cover);
        }
        {
            Timer t;
            esp::EspressoOptions opt;
            opt.strong = true;
            const auto r = esp::espresso(entry.pla, opt);
            row.strong_seconds = t.seconds();
            row.strong_sol = r.cover.size();
        }
    }
    row.rss_mb = peak_rss_mb();
    return row;
}

/// "123*" when the solver proved optimality (paper's star convention).
inline std::string starred(cov::Cost sol, bool proved) {
    return std::to_string(sol) + (proved ? "*" : "");
}

/// "123(120)" — heuristic value with its lower bound (Tables 3–4).
inline std::string with_bound(cov::Cost sol, cov::Cost lb, bool proved) {
    if (proved) return std::to_string(sol) + "*";
    return std::to_string(sol) + "(" + std::to_string(lb) + ")";
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
    std::cout << "=== " << title << " ===\n"
              << paper_ref << "\n"
              << "(instances are synthetic stand-ins named after the paper's "
                 "rows; see DESIGN.md §2)\n\n";
}

}  // namespace ucp::bench
