// Connected-component scan over the live structure of a covering matrix —
// the detection half of the partitioning reduction (paper §2), factored out
// so the exact solver can re-run it after *every* reduce-to-core instead of
// once at the root. Two columns belong to the same block when some live row
// contains both; blocks can be solved as independent subproblems and their
// optima summed (rows are disjoint across blocks, so no constraint couples
// them).
//
// The scan is a union-find over columns (columns linked through shared live
// rows) with path halving. All scratch lives in a ComponentWorkspace that is
// grown once to the high-water mark and then reused — the branch-and-bound
// loop runs a scan per expanded node, so detection must add no steady-state
// allocations (same contract as lagr::LagrangianWorkspace, DESIGN.md §7).
// Block labels are normalised by first appearance in ascending column order,
// so label 0 is always the block of the lowest-numbered live column and the
// numbering is identical regardless of union order or thread count.
#pragma once

#include <vector>

#include "matrix/reductions.hpp"
#include "matrix/sparse_matrix.hpp"
#include "matrix/sub_matrix.hpp"

namespace ucp::cov {

/// Reusable scratch + results of a component scan. After `find_components`
/// returns k:
///   * col_label[j] ∈ [0, k)  — block of column j (undefined for dead/empty
///     columns, which belong to no block);
///   * row_label[i] ∈ [0, k)  — block of row i (undefined for dead rows);
///   * labels are dense and ordered by first appearance over ascending j.
struct ComponentWorkspace {
    std::vector<Index> col_label;
    std::vector<Index> row_label;
    std::vector<Index> parent;  ///< union-find forest over columns (scratch)
    std::vector<Index> labels;  ///< root → dense label (scratch)

    /// Live rows / columns per block, filled by find_components. Indexed by
    /// block label; sized num_blocks.
    std::vector<Index> block_rows;
    std::vector<Index> block_cols;

    /// Reserved footprint in bytes (memory-budget accounting —
    /// util/mem_budget.hpp).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return (col_label.capacity() + row_label.capacity() +
                parent.capacity() + labels.capacity() + block_rows.capacity() +
                block_cols.capacity()) *
               sizeof(Index);
    }
};

/// Scans a compact matrix (every row/column alive). Rows must be non-empty —
/// `m` is a cyclic core or any matrix produced by reduce()/compact().
/// Returns the number of blocks (0 for an empty matrix).
Index find_components(const CoverMatrix& m, ComponentWorkspace& ws);

/// Scans the live sub-structure of a view: dead rows/columns are skipped,
/// labels stay in BASE index space. Live rows must have live_row_size ≥ 1.
Index find_components(const SubMatrix& v, ComponentWorkspace& ws);

/// Materialises the blocks found by the last `find_components(m, ws)` call
/// as compact matrices with base-index maps (same shape as
/// `partition_blocks`, which remains the one-shot convenience wrapper).
/// `out` is cleared first; block b's rows/columns keep their relative order.
void split_components(const CoverMatrix& m, const ComponentWorkspace& ws,
                      Index num_blocks, std::vector<Partition>& out);

/// Same, but from the live sub-structure of a view after
/// `find_components(v, ws)`: block maps are in BASE index space and only
/// alive rows/columns are materialised. Compacting the view first and
/// splitting that copy yields the same blocks — this skips the copy.
void split_components(const SubMatrix& v, const ComponentWorkspace& ws,
                      Index num_blocks, std::vector<Partition>& out);

}  // namespace ucp::cov
