// Prime generation: explicit consensus and implicit BDD→ZDD methods validated
// against a brute-force prime enumerator on small functions, and against each
// other on larger single-output functions.
#include <gtest/gtest.h>

#include <set>

#include "pla/urp.hpp"
#include "primes/explicit_primes.hpp"
#include "primes/implicit_primes.hpp"
#include "util/rng.hpp"

namespace {

using ucp::Rng;
using ucp::pla::Cover;
using ucp::pla::Cube;
using ucp::pla::CubeSpace;
using ucp::pla::Lit;

Cover random_cover(Rng& rng, std::uint32_t n, std::uint32_t m,
                   std::size_t cubes, double lit_prob) {
    const CubeSpace s{n, m};
    Cover f(s);
    for (std::size_t c = 0; c < cubes; ++c) {
        Cube cube = Cube::full_inputs(s);
        for (std::uint32_t i = 0; i < n; ++i)
            if (rng.chance(lit_prob))
                cube.set_in(s, i, rng.chance(0.5) ? Lit::kOne : Lit::kZero);
        bool any = m == 0;
        for (std::uint32_t k = 0; k < m; ++k)
            if (rng.chance(0.6)) {
                cube.set_out(s, k, true);
                any = true;
            }
        if (!any) cube.set_out(s, 0, true);
        f.add(std::move(cube));
    }
    return f;
}

/// Is `c` an implicant of `f` (point containment, brute force)?
bool brute_implicant(const Cover& f, const Cube& c) {
    const CubeSpace& s = f.space();
    bool ok = true;
    f.for_each_assignment([&](std::uint64_t a) {
        if (!c.covers_assignment(s, {a})) return;
        if (s.num_outputs == 0) {
            if (!f.eval({a})) ok = false;
        } else {
            for (std::uint32_t k = 0; k < s.num_outputs; ++k)
                if (c.out(s, k) && !f.eval({a}, k)) ok = false;
        }
    });
    return ok;
}

/// All primes by brute force: every implicant cube, filtered by maximality.
std::set<std::string> brute_primes(const Cover& f) {
    const CubeSpace& s = f.space();
    std::vector<Cube> implicants;
    // Enumerate all 3^n input cubes × all output subsets.
    std::vector<std::uint32_t> digits(s.num_inputs, 0);
    const std::uint32_t out_limit =
        s.num_outputs == 0 ? 1 : (1u << s.num_outputs);
    while (true) {
        Cube base = Cube::full_inputs(s);
        for (std::uint32_t i = 0; i < s.num_inputs; ++i)
            base.set_in(s, i,
                        digits[i] == 0 ? Lit::kDontCare
                                       : (digits[i] == 1 ? Lit::kZero : Lit::kOne));
        for (std::uint32_t om = s.num_outputs == 0 ? 0 : 1; om < out_limit; ++om) {
            Cube c = base;
            for (std::uint32_t k = 0; k < s.num_outputs; ++k)
                c.set_out(s, k, ((om >> k) & 1) != 0);
            if (brute_implicant(f, c)) implicants.push_back(c);
        }
        // Next cube in 3^n counter.
        std::uint32_t i = 0;
        for (; i < s.num_inputs; ++i) {
            if (++digits[i] < 3) break;
            digits[i] = 0;
        }
        if (i == s.num_inputs) break;
    }
    std::set<std::string> primes;
    for (const auto& c : implicants) {
        bool maximal = true;
        for (const auto& d : implicants)
            if (!(d == c) && d.contains(s, c)) maximal = false;
        if (maximal) primes.insert(c.to_string(s));
    }
    return primes;
}

std::set<std::string> cover_strings(const Cover& f) {
    std::set<std::string> out;
    for (const auto& c : f) out.insert(c.to_string(f.space()));
    return out;
}

TEST(ExplicitPrimes, SingleOutputMatchesBruteForce) {
    Rng rng(1);
    for (int trial = 0; trial < 15; ++trial) {
        const Cover f = random_cover(rng, 4, 1, 4 + trial % 4, 0.55);
        const Cover primes = ucp::primes::primes_by_consensus(f);
        EXPECT_EQ(cover_strings(primes), brute_primes(f)) << f.to_string();
    }
}

TEST(ExplicitPrimes, MultiOutputMatchesBruteForce) {
    Rng rng(2);
    for (int trial = 0; trial < 12; ++trial) {
        const Cover f = random_cover(rng, 3, 2, 4 + trial % 3, 0.5);
        const Cover primes = ucp::primes::primes_by_consensus(f);
        EXPECT_EQ(cover_strings(primes), brute_primes(f)) << f.to_string();
    }
}

TEST(ExplicitPrimes, ThreeOutputsMatchBruteForce) {
    // With ≥ 3 outputs, completeness needs the distance-0 output-part
    // consensus: cubes with overlapping-but-incomparable output sets (e.g.
    // {o0,o1} and {o1,o2}) merge into their output union. This is the
    // regression test for the bug the end-to-end stress suite caught.
    Rng rng(21);
    for (int trial = 0; trial < 10; ++trial) {
        const Cover f = random_cover(rng, 2, 3, 4 + trial % 3, 0.4);
        const Cover primes = ucp::primes::primes_by_consensus(f);
        EXPECT_EQ(cover_strings(primes), brute_primes(f)) << f.to_string();
    }
}

TEST(ExplicitPrimes, OutputConsensusRegression) {
    // Two universal cubes asserting {o1,o2} and {o0,o1}: the prime {o0,o1,o2}
    // must be produced.
    const CubeSpace s{2, 3};
    const Cover f = Cover::from_strings(s, {{"--", "011"}, {"--", "110"}});
    const Cover primes = ucp::primes::primes_by_consensus(f);
    EXPECT_EQ(cover_strings(primes), (std::set<std::string>{"-- 111"}));
}

TEST(ExplicitPrimes, InputOnlyCover) {
    Rng rng(3);
    const Cover f = random_cover(rng, 4, 0, 5, 0.5);
    const Cover primes = ucp::primes::primes_by_consensus(f);
    EXPECT_EQ(cover_strings(primes), brute_primes(f));
}

TEST(ExplicitPrimes, KnownExample) {
    // f = x0 x1 + x0' x2: primes are the two cubes plus consensus x1 x2.
    const CubeSpace s{3, 0};
    const Cover f = Cover::from_strings(s, {{"11-", ""}, {"0-1", ""}});
    const Cover primes = ucp::primes::primes_by_consensus(f);
    EXPECT_EQ(cover_strings(primes),
              (std::set<std::string>{"11-", "0-1", "-11"}));
}

TEST(ExplicitPrimes, StatsAndLimit) {
    Rng rng(4);
    const Cover f = random_cover(rng, 5, 1, 8, 0.5);
    ucp::primes::ConsensusStats stats;
    (void)ucp::primes::primes_by_consensus(f, 1u << 20, &stats);
    EXPECT_GT(stats.cubes_added, 0u);
    EXPECT_THROW(ucp::primes::primes_by_consensus(f, 2), std::runtime_error);
}

TEST(ExplicitPrimes, PrimesAreAntichainAndImplicants) {
    Rng rng(5);
    const Cover f = random_cover(rng, 5, 2, 8, 0.5);
    const Cover primes = ucp::primes::primes_by_consensus(f);
    const CubeSpace& s = f.space();
    for (std::size_t i = 0; i < primes.size(); ++i) {
        EXPECT_TRUE(brute_implicant(f, primes[i]));
        for (std::size_t j = 0; j < primes.size(); ++j)
            if (i != j) {
                EXPECT_FALSE(primes[i].contains(s, primes[j]));
            }
    }
}

TEST(TabularPrimes, MatchesConsensusOnRandomFunctions) {
    Rng rng(8);
    for (int trial = 0; trial < 15; ++trial) {
        const Cover f = random_cover(rng, 5 + trial % 3, 0, 5 + trial % 4, 0.5);
        const Cover qm = ucp::primes::primes_by_tabular(f);
        const Cover cons = ucp::primes::primes_by_consensus(f);
        EXPECT_EQ(cover_strings(qm), cover_strings(cons)) << f.to_string();
    }
}

TEST(TabularPrimes, KnownExampleAndGuards) {
    const CubeSpace s{3, 0};
    const Cover f = Cover::from_strings(s, {{"11-", ""}, {"0-1", ""}});
    const Cover qm = ucp::primes::primes_by_tabular(f);
    EXPECT_EQ(cover_strings(qm), (std::set<std::string>{"11-", "0-1", "-11"}));

    // Empty function → no primes; tautology → the universal cube.
    EXPECT_EQ(ucp::primes::primes_by_tabular(Cover(s)).size(), 0u);
    Cover taut(s);
    taut.add(Cube::full_inputs(s));
    const Cover tp = ucp::primes::primes_by_tabular(taut);
    ASSERT_EQ(tp.size(), 1u);
    EXPECT_EQ(tp[0].input_literal_count(s), 0u);

    // Guards: multi-output covers and oversized minterm expansions rejected.
    EXPECT_THROW(ucp::primes::primes_by_tabular(Cover(CubeSpace{3, 1})),
                 std::invalid_argument);
    EXPECT_THROW(ucp::primes::primes_by_tabular(Cover(CubeSpace{10, 0}), 512),
                 std::invalid_argument);
}

TEST(ImplicitPrimes, MatchesExplicitOnRandomFunctions) {
    Rng rng(6);
    for (int trial = 0; trial < 12; ++trial) {
        const Cover f = random_cover(rng, 6, 0, 6 + trial % 5, 0.45);
        ucp::zdd::ZddManager zmgr(2 * 6);
        const auto imp = ucp::primes::implicit_primes(zmgr, f);
        const Cover decoded =
            ucp::primes::primes_zdd_to_cover(zmgr, imp.primes, 6);
        const Cover exp = ucp::primes::primes_by_consensus(f);
        EXPECT_EQ(cover_strings(decoded), cover_strings(exp));
        EXPECT_DOUBLE_EQ(imp.prime_count, static_cast<double>(exp.size()));
    }
}

TEST(ImplicitPrimes, TautologyAndEmpty) {
    const CubeSpace s{3, 0};
    ucp::zdd::ZddManager zmgr(6);
    Cover empty(s);
    const auto pe = ucp::primes::implicit_primes(zmgr, empty);
    EXPECT_TRUE(pe.primes.is_empty());

    Cover taut(s);
    taut.add(Cube::full_inputs(s));
    const auto pt = ucp::primes::implicit_primes(zmgr, taut);
    EXPECT_TRUE(pt.primes.is_base());  // single prime: the universal cube
}

TEST(ImplicitPrimes, CoverToBddRejectsOutputs) {
    ucp::zdd::BddManager bmgr(3);
    Cover f(CubeSpace{3, 1});
    EXPECT_THROW(ucp::primes::cover_to_bdd(bmgr, f), std::invalid_argument);
}

}  // namespace
