// Lagrangian greedy heuristics: feasibility, irredundancy, variant behaviour.
#include <gtest/gtest.h>

#include "gen/scp_gen.hpp"
#include "lagrangian/greedy_heuristics.hpp"
#include "solver/greedy.hpp"
#include "util/rng.hpp"

namespace {

using ucp::cov::CoverMatrix;
using ucp::cov::Index;
using ucp::lagr::GreedyVariant;
using ucp::lagr::lagrangian_greedy;

std::vector<double> original_costs(const CoverMatrix& m) {
    std::vector<double> c(m.num_cols());
    for (Index j = 0; j < m.num_cols(); ++j)
        c[j] = static_cast<double>(m.cost(j));
    return c;
}

TEST(Greedy, AllVariantsProduceFeasibleIrredundantSolutions) {
    ucp::Rng seeds(21);
    for (int trial = 0; trial < 15; ++trial) {
        ucp::gen::RandomScpOptions opt;
        opt.rows = 30;
        opt.cols = 50;
        opt.density = 0.1;
        opt.min_cost = 1;
        opt.max_cost = 4;
        opt.seed = seeds();
        const CoverMatrix m = ucp::gen::random_scp(opt);
        const auto costs = original_costs(m);
        for (int v = 0; v < ucp::lagr::kNumGreedyVariants; ++v) {
            const auto sol =
                lagrangian_greedy(m, costs, static_cast<GreedyVariant>(v));
            EXPECT_TRUE(m.is_feasible(sol));
            // Irredundancy: removing any column breaks feasibility.
            for (std::size_t drop = 0; drop < sol.size(); ++drop) {
                std::vector<Index> reduced;
                for (std::size_t t = 0; t < sol.size(); ++t)
                    if (t != drop) reduced.push_back(sol[t]);
                EXPECT_FALSE(m.is_feasible(reduced));
            }
        }
    }
}

TEST(Greedy, ForcedColumnsAreRespectedWhenUseful) {
    const CoverMatrix m = ucp::gen::cyclic_matrix(8, 3);
    const auto costs = original_costs(m);
    const auto sol = lagrangian_greedy(m, costs, GreedyVariant::kCostOverRows,
                                       {2});
    EXPECT_TRUE(m.is_feasible(sol));
    // Column 2 covers rows 0,1,2 — after irredundancy it may be dropped only
    // if redundant; with k=3 spacing the greedy keeps it.
    // At minimum the solution is feasible and contains ≥ ⌈8/3⌉ columns.
    EXPECT_GE(sol.size(), 3u);
}

TEST(Greedy, NegativeLagrangianCostsAreTakenOutright) {
    const CoverMatrix m = ucp::gen::cyclic_matrix(6, 2);
    std::vector<double> ctilde(6, 1.0);
    ctilde[0] = -0.5;
    ctilde[2] = -0.1;
    ctilde[4] = 0.0;  // ≤ 0: taken too
    const auto sol =
        lagrangian_greedy(m, ctilde, GreedyVariant::kCostOverRows);
    EXPECT_TRUE(m.is_feasible(sol));
    // cols 0,2,4 cover rows {5,0},{1,2},{3,4} = all rows: exactly those.
    EXPECT_EQ(sol, (std::vector<Index>{0, 2, 4}));
}

TEST(Greedy, ChvatalMatchesHandExample) {
    // Classic greedy pick: the big column first.
    const CoverMatrix m = ucp::gen::mis_vs_dual_example();
    const auto r = ucp::solver::chvatal_greedy(m);
    EXPECT_TRUE(m.is_feasible(r.solution));
    EXPECT_EQ(r.cost, 2);  // the glue column alone
    EXPECT_EQ(r.solution, (std::vector<Index>{4}));
}

TEST(Greedy, CoverageWeightedVariantFavoursRareRows) {
    // Row 0 is covered by cols {0,1}; row 1 by many columns. γ4 weights
    // row 0 heavily, so a column covering row 0 is picked first.
    const CoverMatrix m = CoverMatrix::from_rows(
        6, {{0, 1}, {1, 2, 3, 4, 5}, {2, 3}, {4, 5}});
    std::vector<double> ctilde(6, 1.0);
    const auto sol =
        lagrangian_greedy(m, ctilde, GreedyVariant::kCoverageWeighted);
    EXPECT_TRUE(m.is_feasible(sol));
}

TEST(Greedy, SizeMismatchThrows) {
    const CoverMatrix m = ucp::gen::cyclic_matrix(5, 2);
    EXPECT_THROW(lagrangian_greedy(m, {1.0}, GreedyVariant::kCostOverRows),
                 std::invalid_argument);
}

}  // namespace
