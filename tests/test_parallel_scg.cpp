// Parallel multi-start SCG: bit-identical determinism across thread counts,
// the "never worse than single start" guarantee (start 0 replays the classic
// solver's seed verbatim), reduction tie-breaking, and the stats counters.
#include <gtest/gtest.h>

#include "gen/scp_gen.hpp"
#include "solver/scg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using ucp::cov::CoverMatrix;
using ucp::solver::ScgOptions;
using ucp::solver::ScgResult;
using ucp::solver::solve_scg;

CoverMatrix instance(std::uint64_t seed, ucp::cov::Index rows = 40,
                     ucp::cov::Index cols = 60, double density = 0.08) {
    ucp::gen::RandomScpOptions g;
    g.rows = rows;
    g.cols = cols;
    g.density = density;
    g.min_cost = 1;
    g.max_cost = 4;
    g.seed = seed;
    return ucp::gen::random_scp(g);
}

TEST(ParallelScg, IdenticalResultAcrossThreadCounts) {
    ucp::Rng seeds(7101);
    for (int trial = 0; trial < 4; ++trial) {
        const CoverMatrix m = instance(seeds());
        ScgOptions opt;
        opt.seed = 0xfeedULL + trial;
        opt.num_starts = 8;

        std::vector<ScgResult> results;
        for (const int threads : {1, 2, 8}) {
            opt.num_threads = threads;
            results.push_back(solve_scg(m, opt));
        }
        for (std::size_t i = 1; i < results.size(); ++i) {
            EXPECT_EQ(results[0].solution, results[i].solution)
                << "thread count changed the best cover (trial " << trial
                << ")";
            EXPECT_EQ(results[0].cost, results[i].cost);
            EXPECT_EQ(results[0].lower_bound, results[i].lower_bound);
            EXPECT_EQ(results[0].start_of_best, results[i].start_of_best);
            EXPECT_EQ(results[0].subgradient_calls,
                      results[i].subgradient_calls);
        }
        EXPECT_EQ(results[0].starts_executed, 8);
        EXPECT_GE(results[0].start_of_best, 0);
        EXPECT_LT(results[0].start_of_best, 8);
        EXPECT_TRUE(m.is_feasible(results[0].solution));
        EXPECT_EQ(m.solution_cost(results[0].solution), results[0].cost);
        EXPECT_LE(results[0].lower_bound, results[0].cost);
    }
}

TEST(ParallelScg, MultiStartNeverWorseThanSingleStart) {
    // Start 0 of a multi-start run uses opt.seed verbatim, so its descent is
    // exactly the single-start run; additional starts can only improve.
    ucp::Rng seeds(7103);
    for (int trial = 0; trial < 6; ++trial) {
        const CoverMatrix m = instance(seeds(), 30, 45, 0.1);
        ScgOptions single;
        single.seed = 0xabc0ULL + trial;
        const auto one = solve_scg(m, single);

        ScgOptions multi = single;
        multi.num_starts = 6;
        multi.num_threads = 2;
        const auto many = solve_scg(m, multi);

        EXPECT_LE(many.cost, one.cost) << "trial " << trial;
        EXPECT_GE(many.lower_bound, one.lower_bound);
        if (many.cost == one.cost && many.start_of_best == 0) {
            EXPECT_EQ(many.solution, one.solution);
        }
    }
}

TEST(ParallelScg, SingleStartPathUnchangedByNewFields) {
    const CoverMatrix m = instance(991);
    ScgOptions opt;
    opt.seed = 0x5eed;
    const auto classic = solve_scg(m, opt);
    opt.num_starts = 1;
    opt.num_threads = 8;  // must be inert with one start
    const auto same = solve_scg(m, opt);
    EXPECT_EQ(classic.solution, same.solution);
    EXPECT_EQ(classic.cost, same.cost);
    EXPECT_EQ(same.starts_executed, 1);
    EXPECT_EQ(same.start_of_best, 0);
}

TEST(ParallelScg, AutoThreadsAndTrivialInstances) {
    // num_threads = 0 (auto) must work, including on instances the
    // reductions solve outright.
    const CoverMatrix m =
        CoverMatrix::from_rows(3, {{0}, {1}, {0, 1, 2}}, {1, 1, 1});
    ScgOptions opt;
    opt.num_starts = 4;
    opt.num_threads = 0;
    const auto r = solve_scg(m, opt);
    EXPECT_TRUE(r.proved_optimal);
    EXPECT_EQ(r.cost, 2);
    EXPECT_EQ(r.starts_executed, 4);
}

TEST(ParallelScg, StatsCountersPopulated) {
    ucp::stats::reset_all();
    const CoverMatrix m = instance(2024);
    ScgOptions opt;
    opt.num_starts = 3;
    opt.num_threads = 2;
    const auto r = solve_scg(m, opt);
    EXPECT_TRUE(m.is_feasible(r.solution));

    const auto snap = ucp::stats::snapshot();
    const auto get = [&](const char* k) {
        const auto it = snap.find(k);
        return it == snap.end() ? 0.0 : it->second;
    };
    EXPECT_GE(get("scg.calls"), 1.0);
    EXPECT_GE(get("scg.starts"), 3.0);
    EXPECT_GE(get("subgradient.calls"), 1.0);
    EXPECT_GE(get("subgradient.iterations"), get("subgradient.calls"));
    EXPECT_GT(get("scg.seconds"), 0.0);
    EXPECT_EQ(get("scg.starts"),
              static_cast<double>(r.starts_executed));
}

}  // namespace
