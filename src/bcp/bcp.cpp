#include "bcp/bcp.hpp"

#include <algorithm>
#include <limits>

#include "util/timer.hpp"

namespace ucp::bcp {

BcpMatrix BcpMatrix::from_rows(Index num_cols,
                               std::vector<std::vector<Literal>> rows,
                               std::vector<Cost> costs) {
    BcpMatrix m;
    if (costs.empty()) costs.assign(num_cols, 1);
    UCP_REQUIRE(costs.size() == num_cols, "cost vector size mismatch");
    for (const Cost c : costs) UCP_REQUIRE(c > 0, "column costs must be positive");
    m.costs_ = std::move(costs);

    for (auto& r : rows) {
        std::sort(r.begin(), r.end());
        r.erase(std::unique(r.begin(), r.end()), r.end());
        UCP_REQUIRE(!r.empty(), "empty clause makes the problem infeasible");
        bool tautology = false;
        for (std::size_t t = 0; t + 1 < r.size(); ++t) {
            UCP_REQUIRE(r[t].col < num_cols, "column index out of range");
            if (r[t].col == r[t + 1].col) tautology = true;  // both phases
        }
        UCP_REQUIRE(r.back().col < num_cols, "column index out of range");
        if (!tautology) m.rows_.push_back(std::move(r));
    }
    return m;
}

BcpMatrix BcpMatrix::from_unate(const cov::CoverMatrix& m) {
    std::vector<std::vector<Literal>> rows(m.num_rows());
    for (Index i = 0; i < m.num_rows(); ++i)
        for (const Index j : m.row(i)) rows[i].push_back({j, true});
    std::vector<Cost> costs(m.costs());
    return from_rows(m.num_cols(), std::move(rows), std::move(costs));
}

bool BcpMatrix::row_satisfied(Index i, const std::vector<bool>& x) const {
    for (const Literal& l : rows_[i])
        if (x[l.col] == l.positive) return true;
    return false;
}

bool BcpMatrix::is_feasible(const std::vector<bool>& x) const {
    UCP_REQUIRE(x.size() == num_cols(), "assignment size mismatch");
    for (Index i = 0; i < num_rows(); ++i)
        if (!row_satisfied(i, x)) return false;
    return true;
}

Cost BcpMatrix::assignment_cost(const std::vector<bool>& x) const {
    Cost c = 0;
    for (Index j = 0; j < num_cols(); ++j)
        if (x[j]) c += costs_[j];
    return c;
}

Cost positive_mis_bound(const BcpMatrix& m) {
    // Collect all-positive clauses with their cheapest column.
    std::vector<Index> candidates;
    for (Index i = 0; i < m.num_rows(); ++i) {
        bool all_pos = true;
        for (const Literal& l : m.row(i)) all_pos &= l.positive;
        if (all_pos) candidates.push_back(i);
    }
    std::vector<bool> col_used(m.num_cols(), false);
    Cost bound = 0;
    for (const Index i : candidates) {
        bool disjoint = true;
        Cost cheapest = std::numeric_limits<Cost>::max();
        for (const Literal& l : m.row(i)) {
            if (col_used[l.col]) disjoint = false;
            cheapest = std::min(cheapest, m.cost(l.col));
        }
        if (!disjoint) continue;
        for (const Literal& l : m.row(i)) col_used[l.col] = true;
        bound += cheapest;
    }
    return bound;
}

namespace {

enum : std::int8_t { kUnset = -1 };

struct SearchCtx {
    SearchCtx(const BcpMatrix& matrix, const BcpOptions& options)
        : m(matrix), opt(options) {}

    const BcpMatrix& m;
    const BcpOptions& opt;
    Timer timer;
    std::size_t nodes = 0;
    bool aborted = false;
    bool found = false;
    Cost best_cost = 0;
    std::vector<bool> best;

    bool out_of_budget() {
        return nodes >= opt.max_nodes ||
               (opt.time_limit_seconds > 0.0 &&
                timer.seconds() >= opt.time_limit_seconds);
    }
};

/// Unit propagation to a fixed point. Returns false on conflict. Adds the
/// cost of every variable forced to 1 into `cost`.
bool propagate(const BcpMatrix& m, std::vector<std::int8_t>& assign,
               Cost& cost) {
    bool changed = true;
    while (changed) {
        changed = false;
        for (Index i = 0; i < m.num_rows(); ++i) {
            bool satisfied = false;
            int unassigned = 0;
            Literal last{};
            for (const Literal& l : m.row(i)) {
                const std::int8_t a = assign[l.col];
                if (a == kUnset) {
                    ++unassigned;
                    last = l;
                } else if ((a == 1) == l.positive) {
                    satisfied = true;
                    break;
                }
            }
            if (satisfied) continue;
            if (unassigned == 0) return false;  // falsified clause
            if (unassigned == 1) {
                assign[last.col] = last.positive ? 1 : 0;
                if (last.positive) cost += m.cost(last.col);
                changed = true;
            }
        }
    }
    return true;
}

/// Bound from still-unsatisfied clauses whose remaining literals are all
/// positive (negative remaining literals can be honoured for free).
Cost remaining_positive_bound(const BcpMatrix& m,
                              const std::vector<std::int8_t>& assign) {
    std::vector<bool> col_used(m.num_cols(), false);
    Cost bound = 0;
    for (Index i = 0; i < m.num_rows(); ++i) {
        bool satisfied = false;
        bool all_pos = true;
        bool disjoint = true;
        Cost cheapest = std::numeric_limits<Cost>::max();
        for (const Literal& l : m.row(i)) {
            const std::int8_t a = assign[l.col];
            if (a != kUnset) {
                if ((a == 1) == l.positive) {
                    satisfied = true;
                    break;
                }
                continue;  // falsified literal: not "remaining"
            }
            if (!l.positive) {
                all_pos = false;
                break;
            }
            if (col_used[l.col]) disjoint = false;
            cheapest = std::min(cheapest, m.cost(l.col));
        }
        if (satisfied || !all_pos || !disjoint) continue;
        for (const Literal& l : m.row(i))
            if (assign[l.col] == kUnset) col_used[l.col] = true;
        bound += cheapest;
    }
    return bound;
}

void search(SearchCtx& ctx, std::vector<std::int8_t> assign, Cost cost) {
    if (ctx.aborted || ctx.out_of_budget()) {
        ctx.aborted = true;
        return;
    }
    ++ctx.nodes;
    const BcpMatrix& m = ctx.m;

    if (!propagate(m, assign, cost)) return;
    if (ctx.found && cost >= ctx.best_cost) return;
    if (cost + remaining_positive_bound(m, assign) >=
            (ctx.found ? ctx.best_cost : std::numeric_limits<Cost>::max()))
        return;

    // Find a shortest unsatisfied clause to branch on.
    Index branch_row = m.num_rows();
    std::size_t branch_size = SIZE_MAX;
    for (Index i = 0; i < m.num_rows(); ++i) {
        bool satisfied = false;
        std::size_t open = 0;
        for (const Literal& l : m.row(i)) {
            const std::int8_t a = assign[l.col];
            if (a == kUnset) ++open;
            else if ((a == 1) == l.positive) {
                satisfied = true;
                break;
            }
        }
        if (satisfied) continue;
        UCP_ASSERT(open >= 2);  // unit clauses were propagated
        if (open < branch_size) {
            branch_size = open;
            branch_row = i;
        }
    }

    if (branch_row == m.num_rows()) {
        // All clauses satisfied: complete with zeros (free).
        std::vector<bool> x(m.num_cols(), false);
        for (Index j = 0; j < m.num_cols(); ++j) x[j] = assign[j] == 1;
        UCP_ASSERT(m.is_feasible(x));
        if (!ctx.found || cost < ctx.best_cost) {
            ctx.found = true;
            ctx.best_cost = cost;
            ctx.best = std::move(x);
        }
        return;
    }

    // Branch on the first unassigned literal: satisfying phase first.
    Literal pick{};
    for (const Literal& l : m.row(branch_row))
        if (assign[l.col] == kUnset) {
            pick = l;
            break;
        }
    {
        auto a1 = assign;
        a1[pick.col] = pick.positive ? 1 : 0;
        search(ctx, std::move(a1),
               cost + (pick.positive ? m.cost(pick.col) : 0));
    }
    {
        auto a0 = assign;
        a0[pick.col] = pick.positive ? 0 : 1;
        search(ctx, std::move(a0),
               cost + (pick.positive ? 0 : m.cost(pick.col)));
    }
}

/// Clause dominance: clause i is implied by clause k when lits(k) ⊆ lits(i).
BcpMatrix row_dominance(const BcpMatrix& m) {
    std::vector<bool> dead(m.num_rows(), false);
    for (Index i = 0; i < m.num_rows(); ++i) {
        if (dead[i]) continue;
        for (Index k = 0; k < m.num_rows(); ++k) {
            if (i == k || dead[k]) continue;
            const auto& a = m.row(i);
            const auto& b = m.row(k);
            if (b.size() > a.size()) continue;
            if (b == a && k > i) continue;  // equal clauses: keep the first
            if (std::includes(a.begin(), a.end(), b.begin(), b.end()))
                dead[i] = true;
        }
    }
    std::vector<std::vector<Literal>> rows;
    for (Index i = 0; i < m.num_rows(); ++i)
        if (!dead[i]) rows.push_back(m.row(i));
    std::vector<Cost> costs(m.costs());
    return BcpMatrix::from_rows(m.num_cols(), std::move(rows), std::move(costs));
}

}  // namespace

BcpResult solve_bcp(const BcpMatrix& m, const BcpOptions& opt) {
    const BcpMatrix work = opt.use_row_dominance ? row_dominance(m) : m;
    SearchCtx ctx{work, opt};
    ctx.best_cost = 0;

    std::vector<std::int8_t> assign(work.num_cols(), kUnset);
    search(ctx, std::move(assign), 0);

    BcpResult out;
    out.nodes = ctx.nodes;
    out.seconds = ctx.timer.seconds();
    out.optimal = !ctx.aborted;
    out.feasible = ctx.found;
    out.lower_bound = positive_mis_bound(work);
    if (ctx.found) {
        out.assignment = std::move(ctx.best);
        out.cost = ctx.best_cost;
        if (out.optimal) out.lower_bound = out.cost;
        UCP_ASSERT(m.is_feasible(out.assignment));
        UCP_ASSERT(m.assignment_cost(out.assignment) == out.cost);
    }
    return out;
}

}  // namespace ucp::bcp
