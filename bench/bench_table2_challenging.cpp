// Reproduces Table 2: ZDD_SCG vs Espresso (normal + strong) on the
// *challenging* problems. Expected shape: many instances are proved optimal
// (stars); ZDD_SCG never loses to Espresso on quality; on the large
// random-logic rows (ex1010/test2/test3/pdc) the gap is substantial.
#include "bench_common.hpp"

int main(int argc, char** argv) {
    using ucp::TextTable;
    ucp::bench::JsonReporter json(argc, argv, "table2_challenging");
    ucp::bench::print_header(
        "Table 2 — challenging problems",
        "Paper: 11 of 16 instances proved optimal; big wins on ex1010\n"
        "(239 vs 284/262), pdc (96 vs 145/119), test2 (865 vs 1103/946),\n"
        "test3 (436 vs 541/489).");

    // --threads / --starts drive the parallel multi-start SCG; the espresso
    // baselines can be skipped with --no-espresso for speedup measurements.
    ucp::solver::TwoLevelOptions opt;
    opt.scg.num_starts = json.starts();
    opt.scg.num_threads = json.threads();
    const bool run_espresso = !ucp::Options(argc, argv).has("no-espresso");

    TextTable table({"Name", "Sol", "CC(s)", "T(s)", "M", "Espr.Sol",
                     "Espr.T(s)", "Strong.Sol", "Strong.T(s)"});
    long total_scg = 0, total_esp = 0, total_strong = 0;
    int proved = 0, wins = 0, ties = 0, losses = 0;
    for (const auto& entry : ucp::gen::challenging_suite()) {
        const auto row = ucp::bench::run_pipeline(entry, run_espresso, opt);
        json.record(row.name, static_cast<double>(row.scg.cost),
                    row.scg.total_seconds * 1e3,
                    {{"cc_ms", row.scg.cyclic_core_seconds * 1e3},
                     {"proved_optimal", row.scg.proved_optimal ? 1.0 : 0.0}},
                    {{"status", ucp::to_string(row.scg.status)}});
        total_scg += row.scg.cost;
        total_esp += static_cast<long>(row.espresso_sol);
        total_strong += static_cast<long>(row.strong_sol);
        proved += row.scg.proved_optimal ? 1 : 0;
        const auto best_esp =
            std::min<long>(static_cast<long>(row.espresso_sol),
                           static_cast<long>(row.strong_sol));
        if (row.scg.cost < best_esp) ++wins;
        else if (row.scg.cost == best_esp) ++ties;
        else ++losses;
        table.add_row({row.name,
                       ucp::bench::starred(row.scg.cost, row.scg.proved_optimal),
                       TextTable::num(row.scg.cyclic_core_seconds),
                       TextTable::num(row.scg.total_seconds),
                       TextTable::num(row.rss_mb, 0),
                       std::to_string(row.espresso_sol),
                       TextTable::num(row.espresso_seconds),
                       std::to_string(row.strong_sol),
                       TextTable::num(row.strong_seconds)});
    }
    table.print(std::cout);
    std::cout << "\nTotals: ZDD_SCG " << total_scg << "  Espresso " << total_esp
              << "  Espresso-strong " << total_strong << '\n';
    std::cout << "Proved optimal: " << proved << " of 16 (paper: 11 of 16)\n";
    std::cout << "ZDD_SCG vs best Espresso mode: " << wins << " wins, " << ties
              << " ties, " << losses << " losses\n";
    std::cout << "\nPaper's Table 2 for reference:\n";
    TextTable paper({"Name", "Sol", "CC(s)", "T(s)", "M", "Espr.Sol",
                     "Espr.T(s)", "Strong.Sol", "Strong.T(s)"});
    paper.add_row({"ex1010", "239", "146", "1501", "23", "284", "9.25", "262", "16.83"});
    paper.add_row({"ex4", "279*", "10.38", "10.38", "13", "279", "3.79", "279", "4.22"});
    paper.add_row({"ibm", "173*", "43.56", "43.56", "48", "173", "0.28", "173", "0.31"});
    paper.add_row({"jbp", "122*", "74.56", "74.58", "15", "122", "0.98", "122", "1.11"});
    paper.add_row({"misg", "69*", "0.60", "0.60", "9", "69", "0.11", "69", "0.17"});
    paper.add_row({"mish", "82*", "0.76", "0.76", "9", "82", "0.19", "82", "0.25"});
    paper.add_row({"misj", "35*", "0.16", "0.16", "9", "35", "0.02", "35", "0.04"});
    paper.add_row({"pdc", "96", "72.56", "77.54", "51", "145", "12.61", "119", "15.46"});
    paper.add_row({"shift", "100*", "73.16", "73.16", "51", "100", "0.04", "100", "0.04"});
    paper.add_row({"soar.pla", "352", "4294", "4333", "158", "353", "8.84", "352", "11.16"});
    paper.add_row({"test2", "865", "19105", "108058", "414", "1103", "128.7", "946", "356.2"});
    paper.add_row({"test3", "436", "7978", "16145", "218", "541", "70.73", "489", "129.6"});
    paper.add_row({"ti", "213*", "955", "954.88", "88", "213", "3.28", "213", "3.37"});
    paper.add_row({"ts10", "128*", "1.11", "1.11", "10", "128", "0.05", "128", "0.06"});
    paper.add_row({"x2dn", "104*", "10.24", "10.24", "13", "104", "0.54", "104", "0.63"});
    paper.add_row({"xparc", "254*", "297", "297.31", "89", "254", "6.11", "254", "6.26"});
    paper.print(std::cout);
    return 0;
}
