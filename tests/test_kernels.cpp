// Differential tests for the sparse-ops kernel layer (kernels/sparse_ops.hpp):
// for every kernel, the AVX2 implementation must produce output that is
// bit-identical to the portable scalar reference — including what it does NOT
// touch (dead lanes keep their stale bits). The sweeps cover every vector
// tail length (n mod 4 / mod 8 over 0..7), pointers that are 8- but not
// 32-byte aligned, all-dead and all-alive masks, and the argmin tie rule.
//
// On machines without AVX2 (or -DUCP_SIMD=OFF builds) the differential cases
// skip; the dispatch tests still run. The CI scalar lane re-runs this binary
// with UCP_SIMD=scalar in the environment (see SimdDispatch.EnvForcing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "kernels/simd.hpp"
#include "kernels/sparse_ops.hpp"
#include "util/stats.hpp"

namespace kern = ucp::kern;
using kern::Index32;

namespace {

// Every tail residue 0..7 plus a few larger lengths for the main loops.
const std::vector<std::size_t> kSizes{0,  1,  2,  3,  4,  5,  6,   7,  8, 9,
                                      12, 15, 16, 17, 31, 32, 33, 63, 64, 100};

std::vector<double> random_doubles(std::mt19937_64& g, std::size_t n) {
    std::uniform_real_distribution<double> d(-10.0, 10.0);
    std::vector<double> v(n);
    for (double& x : v) x = d(g);
    return v;
}

enum class MaskKind { kNull, kAllAlive, kAllDead, kRandom };

std::vector<char> make_mask(std::mt19937_64& g, std::size_t n, MaskKind kind) {
    std::vector<char> m(n, 1);
    if (kind == MaskKind::kAllDead) std::fill(m.begin(), m.end(), char{0});
    if (kind == MaskKind::kRandom)
        for (char& c : m) c = static_cast<char>(g() & 1u);
    return m;
}

std::vector<Index32> sorted_distinct_indices(std::mt19937_64& g, std::size_t n,
                                             std::size_t universe) {
    std::vector<Index32> all(universe);
    for (std::size_t i = 0; i < universe; ++i) all[i] = static_cast<Index32>(i);
    std::shuffle(all.begin(), all.end(), g);
    all.resize(std::min(n, universe));
    std::sort(all.begin(), all.end());
    return all;
}

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

// ---- dispatch layer ---------------------------------------------------------
// Defined first: gtest runs tests in declaration order within a TU, and the
// dispatch assertions must observe the process-initial selection before any
// force_isa() calls below.

TEST(SimdDispatch, EnvForcing) {
    const kern::Isa isa = kern::active_isa();
    if (const char* env = std::getenv("UCP_SIMD")) {
        if (std::string(env) == "scalar")
            EXPECT_EQ(isa, kern::Isa::kScalar);
        else if (std::string(env) == "avx2" && kern::avx2_available())
            EXPECT_EQ(isa, kern::Isa::kAvx2);
    } else if (!kern::avx2_available()) {
        EXPECT_EQ(isa, kern::Isa::kScalar);
    }
}

TEST(SimdDispatch, FlushesSelectionExactlyOnce) {
    (void)kern::active_isa();
    const auto snap = ucp::stats::snapshot();
    const auto it = snap.find("kernels.simd_dispatch");
    ASSERT_NE(it, snap.end());
    EXPECT_EQ(it->second, 1.0);
    // Re-resolving and re-flushing the same selection must not double-count.
    (void)kern::active_isa();
    kern::force_isa(kern::active_isa());
    EXPECT_EQ(ucp::stats::snapshot().at("kernels.simd_dispatch"), 1.0);
}

TEST(SimdDispatch, ParseIsa) {
    kern::Isa isa = kern::Isa::kScalar;
    EXPECT_TRUE(kern::parse_isa("scalar", isa));
    EXPECT_EQ(isa, kern::Isa::kScalar);
    EXPECT_TRUE(kern::parse_isa("avx2", isa));
    EXPECT_EQ(isa, kern::Isa::kAvx2);
    EXPECT_TRUE(kern::parse_isa("auto", isa));
    EXPECT_EQ(isa, kern::avx2_available() ? kern::Isa::kAvx2
                                          : kern::Isa::kScalar);
    EXPECT_FALSE(kern::parse_isa("sse9", isa));
    EXPECT_FALSE(kern::parse_isa("", isa));
}

TEST(SimdDispatch, ForceScalarRoundTrip) {
    const kern::Isa before = kern::active_isa();
    kern::force_isa(kern::Isa::kScalar);
    EXPECT_EQ(kern::active_isa(), kern::Isa::kScalar);
    // The public wrappers must dispatch through the forced selection.
    std::vector<double> x(5, -1.0);
    kern::fill(x.data(), 2.5, x.size());
    for (double v : x) EXPECT_EQ(v, 2.5);
    kern::force_isa(before);
    EXPECT_EQ(kern::active_isa(), before);
    // Forcing AVX2 on a machine without it degrades to scalar, never traps.
    kern::force_isa(kern::Isa::kAvx2);
    EXPECT_EQ(kern::active_isa(), kern::avx2_available() ? kern::Isa::kAvx2
                                                         : kern::Isa::kScalar);
    kern::force_isa(before);
}

// ---- per-op differential fixture --------------------------------------------

class KernelsDifferential : public ::testing::Test {
protected:
    void SetUp() override {
        avx_ = kern::ops_avx2();
        if (avx_ == nullptr)
            GTEST_SKIP() << "AVX2 table not available (CPU or -DUCP_SIMD=OFF)";
    }

    const kern::Ops& scalar() { return kern::ops_scalar(); }
    const kern::Ops* avx_ = nullptr;
    std::mt19937_64 g_{0x5eedu};
};

TEST_F(KernelsDifferential, ElementwiseMaskedAllTails) {
    for (const std::size_t n : kSizes) {
        for (const MaskKind mk : {MaskKind::kNull, MaskKind::kAllAlive,
                                  MaskKind::kAllDead, MaskKind::kRandom}) {
            const auto mask = make_mask(g_, n, mk);
            const char* alive = mk == MaskKind::kNull ? nullptr : mask.data();
            const auto x0 = random_doubles(g_, n);
            const auto d = random_doubles(g_, n);
            const double step = 0.37;

            auto a = x0, b = x0;
            scalar().step_clamp_nonneg(a.data(), d.data(), step, alive, n);
            avx_->step_clamp_nonneg(b.data(), d.data(), step, alive, n);
            EXPECT_TRUE(bits_equal(a, b)) << "step_clamp_nonneg n=" << n;

            a = x0, b = x0;
            scalar().step_clamp01(a.data(), d.data(), step, alive, n);
            avx_->step_clamp01(b.data(), d.data(), step, alive, n);
            EXPECT_TRUE(bits_equal(a, b)) << "step_clamp01 n=" << n;

            a = x0, b = x0;
            scalar().rsub_masked(a.data(), d.data(), alive, n);
            avx_->rsub_masked(b.data(), d.data(), alive, n);
            EXPECT_TRUE(bits_equal(a, b)) << "rsub_masked n=" << n;

            a = x0, b = x0;
            scalar().copy_masked(a.data(), d.data(), alive, n);
            avx_->copy_masked(b.data(), d.data(), alive, n);
            EXPECT_TRUE(bits_equal(a, b)) << "copy_masked n=" << n;

            a = x0, b = x0;
            scalar().select_fill(a.data(), 1.0, 0.0, alive, n);
            avx_->select_fill(b.data(), 1.0, 0.0, alive, n);
            EXPECT_TRUE(bits_equal(a, b)) << "select_fill n=" << n;

            a = x0, b = x0;
            scalar().fill(a.data(), -3.25, n);
            avx_->fill(b.data(), -3.25, n);
            EXPECT_TRUE(bits_equal(a, b)) << "fill n=" << n;
        }
    }
}

TEST_F(KernelsDifferential, ElementwiseUnalignedPointers) {
    // One double of offset: still 8-byte aligned (doubles always are) but
    // guaranteed not 32-byte aligned on at least one of the two buffers — the
    // AVX2 path must use unaligned loads/stores throughout.
    for (const std::size_t n : {7u, 16u, 33u, 100u}) {
        auto x0 = random_doubles(g_, n + 1);
        const auto d = random_doubles(g_, n + 1);
        const auto mask = make_mask(g_, n, MaskKind::kRandom);
        auto a = x0, b = x0;
        scalar().step_clamp_nonneg(a.data() + 1, d.data() + 1, 0.2,
                                   mask.data(), n);
        avx_->step_clamp_nonneg(b.data() + 1, d.data() + 1, 0.2, mask.data(),
                                n);
        EXPECT_TRUE(bits_equal(a, b)) << "unaligned n=" << n;

        a = x0, b = x0;
        scalar().copy_masked(a.data() + 1, d.data() + 1, mask.data(), n);
        avx_->copy_masked(b.data() + 1, d.data() + 1, mask.data(), n);
        EXPECT_TRUE(bits_equal(a, b)) << "unaligned copy n=" << n;
    }
}

TEST_F(KernelsDifferential, SpanGatherScatter) {
    const std::size_t universe = 200;
    for (const std::size_t n : kSizes) {
        const auto idx = sorted_distinct_indices(g_, n, universe);
        const auto x0 = random_doubles(g_, universe);
        const auto mask = make_mask(g_, universe, MaskKind::kRandom);
        const double v = 1.625;

        auto a = x0, b = x0;
        scalar().span_sub(a.data(), idx.data(), idx.size(), v);
        avx_->span_sub(b.data(), idx.data(), idx.size(), v);
        EXPECT_TRUE(bits_equal(a, b)) << "span_sub n=" << n;

        a = x0, b = x0;
        scalar().span_add(a.data(), idx.data(), idx.size(), v);
        avx_->span_add(b.data(), idx.data(), idx.size(), v);
        EXPECT_TRUE(bits_equal(a, b)) << "span_add n=" << n;

        for (const char* alive : {static_cast<const char*>(nullptr),
                                  static_cast<const char*>(mask.data())}) {
            a = x0, b = x0;
            scalar().span_sub_masked(a.data(), idx.data(), idx.size(), v,
                                     alive);
            avx_->span_sub_masked(b.data(), idx.data(), idx.size(), v, alive);
            EXPECT_TRUE(bits_equal(a, b)) << "span_sub_masked n=" << n;
        }
    }
}

TEST_F(KernelsDifferential, ArgminRatioTieRule) {
    // Equal scores at several indices: both paths must return the smallest.
    const std::size_t n = 13;
    std::vector<double> c(n, 8.0);
    std::vector<Index32> nj(n, 4);  // every score = 2.0
    EXPECT_EQ(scalar().argmin_ratio(c.data(), nj.data(), nullptr, nullptr, n),
              0u);
    EXPECT_EQ(avx_->argmin_ratio(c.data(), nj.data(), nullptr, nullptr, n),
              0u);
    // Make index 5 and 9 the (tied) minimum: smallest wins.
    c[5] = c[9] = 4.0;
    EXPECT_EQ(scalar().argmin_ratio(c.data(), nj.data(), nullptr, nullptr, n),
              5u);
    EXPECT_EQ(avx_->argmin_ratio(c.data(), nj.data(), nullptr, nullptr, n),
              5u);
    // A tie between a vector-lane minimum and a tail minimum (n=13 → tail is
    // indices 12): the earlier index must still win.
    std::fill(c.begin(), c.end(), 8.0);
    c[2] = c[12] = 4.0;
    EXPECT_EQ(avx_->argmin_ratio(c.data(), nj.data(), nullptr, nullptr, n),
              2u);
    // Invalid lanes: nj == 0, dead, selected. All-invalid returns n.
    std::vector<char> dead(n, 0);
    EXPECT_EQ(scalar().argmin_ratio(c.data(), nj.data(), dead.data(), nullptr,
                                    n),
              static_cast<Index32>(n));
    EXPECT_EQ(avx_->argmin_ratio(c.data(), nj.data(), dead.data(), nullptr, n),
              static_cast<Index32>(n));
    std::vector<Index32> nj0(n, 0);
    EXPECT_EQ(avx_->argmin_ratio(c.data(), nj0.data(), nullptr, nullptr, n),
              static_cast<Index32>(n));
}

TEST_F(KernelsDifferential, ArgminRatioRandomDifferential) {
    std::uniform_int_distribution<Index32> nj_dist(0, 6);
    for (const std::size_t n : kSizes) {
        for (int rep = 0; rep < 8; ++rep) {
            auto c = random_doubles(g_, n);
            for (double& x : c) x = std::abs(x);
            std::vector<Index32> nj(n);
            for (Index32& v : nj) v = nj_dist(g_);
            const auto alive = make_mask(g_, n, MaskKind::kRandom);
            const auto sel = make_mask(g_, n, MaskKind::kRandom);
            EXPECT_EQ(scalar().argmin_ratio(c.data(), nj.data(), alive.data(),
                                            sel.data(), n),
                      avx_->argmin_ratio(c.data(), nj.data(), alive.data(),
                                         sel.data(), n))
                << "argmin n=" << n << " rep=" << rep;
        }
    }
}

TEST_F(KernelsDifferential, BitsetSubsetKernels) {
    for (const std::size_t wpr : {1u, 2u, 3u, 5u, 8u}) {
        const std::size_t rows = 24;
        std::vector<std::uint64_t> words(rows * wpr);
        for (auto& w : words) w = g_();
        // Sprinkle guaranteed-subset pairs: row r+1 ⊇ row r for even r.
        for (std::size_t r = 0; r + 1 < rows; r += 2)
            for (std::size_t k = 0; k < wpr; ++k)
                words[(r + 1) * wpr + k] |= words[r * wpr + k];
        for (const std::size_t n : kSizes) {
            const auto cand = sorted_distinct_indices(g_, n, rows);
            const std::uint64_t* probe = words.data();  // row 0
            std::vector<char> out_s(cand.size() + 1, 42),
                out_v(cand.size() + 1, 42);
            scalar().subset_batch(words.data(), wpr, probe, cand.data(),
                                  cand.size(), out_s.data());
            avx_->subset_batch(words.data(), wpr, probe, cand.data(),
                               cand.size(), out_v.data());
            EXPECT_EQ(out_s, out_v) << "subset_batch wpr=" << wpr;
            EXPECT_EQ(scalar().subset_first(words.data(), wpr, probe,
                                            cand.data(), cand.size()),
                      avx_->subset_first(words.data(), wpr, probe, cand.data(),
                                         cand.size()))
                << "subset_first wpr=" << wpr;
        }
        // Reflexivity: every row is a subset of itself.
        std::vector<Index32> self{3};
        char hit = 0;
        avx_->subset_batch(words.data(), wpr, words.data() + 3 * wpr,
                           self.data(), 1, &hit);
        EXPECT_EQ(hit, 1);
    }
}

TEST_F(KernelsDifferential, PopcountAndBuildBits) {
    for (const std::size_t n : kSizes) {
        std::vector<std::uint64_t> w(n);
        for (auto& x : w) x = g_();
        EXPECT_EQ(scalar().popcount_words(w.data(), n),
                  avx_->popcount_words(w.data(), n))
            << "popcount n=" << n;

        const std::size_t universe = 190;
        const auto idx = sorted_distinct_indices(g_, n, universe);
        const auto keep = make_mask(g_, universe, MaskKind::kRandom);
        const std::size_t nwords = (universe + 63) / 64;
        for (const char* k : {static_cast<const char*>(nullptr),
                              static_cast<const char*>(keep.data())}) {
            std::vector<std::uint64_t> ws(nwords, 0), wv(nwords, 0);
            scalar().build_bits_filtered(ws.data(), idx.data(), idx.size(), k);
            avx_->build_bits_filtered(wv.data(), idx.data(), idx.size(), k);
            EXPECT_EQ(ws, wv) << "build_bits_filtered n=" << n;
        }
    }
}

TEST_F(KernelsDifferential, SumAndFilterRemap) {
    std::uniform_int_distribution<Index32> val(0, 1000);
    for (const std::size_t n : kSizes) {
        std::vector<Index32> v(n);
        for (Index32& x : v) x = val(g_);
        for (const MaskKind mk :
             {MaskKind::kNull, MaskKind::kAllDead, MaskKind::kRandom}) {
            const auto mask = make_mask(g_, n, mk);
            const char* alive = mk == MaskKind::kNull ? nullptr : mask.data();
            EXPECT_EQ(scalar().sum_u32_masked(v.data(), alive, n),
                      avx_->sum_u32_masked(v.data(), alive, n))
                << "sum_u32_masked n=" << n;
        }

        const std::size_t universe = 150;
        const auto idx = sorted_distinct_indices(g_, n, universe);
        const auto alive = make_mask(g_, universe, MaskKind::kRandom);
        std::vector<Index32> remap(universe);
        for (std::size_t i = 0; i < universe; ++i)
            remap[i] = static_cast<Index32>(universe - 1 - i);
        std::vector<Index32> ds(idx.size() + 1, 7777), dv(idx.size() + 1, 7777);
        const std::size_t ws = scalar().filter_remap(
            ds.data(), idx.data(), idx.size(), alive.data(), remap.data());
        const std::size_t wv = avx_->filter_remap(
            dv.data(), idx.data(), idx.size(), alive.data(), remap.data());
        EXPECT_EQ(ws, wv) << "filter_remap count n=" << n;
        EXPECT_EQ(ds, dv) << "filter_remap content n=" << n;
        // All-dead: nothing written.
        std::vector<char> dead(universe, 0);
        EXPECT_EQ(avx_->filter_remap(dv.data(), idx.data(), idx.size(),
                                     dead.data(), remap.data()),
                  0u);
    }
}

// The public dispatching wrappers must agree with the scalar reference no
// matter which ISA is active — a cheap end-to-end check over the same
// dispatch path the solver uses.
TEST(KernelsDispatchWrappers, MatchScalarReference) {
    std::mt19937_64 g(0xabcdu);
    const std::size_t n = 37;
    const auto x0 = random_doubles(g, n);
    const auto d = random_doubles(g, n);
    const auto mask = make_mask(g, n, MaskKind::kRandom);
    auto a = x0, b = x0;
    kern::ops_scalar().step_clamp_nonneg(a.data(), d.data(), 0.11, mask.data(),
                                         n);
    kern::step_clamp_nonneg(b.data(), d.data(), 0.11, mask.data(), n);
    EXPECT_TRUE(bits_equal(a, b));
    EXPECT_EQ(kern::dot_self(x0.data(), n),
              kern::dot_self_masked(x0.data(), nullptr, n));
}
