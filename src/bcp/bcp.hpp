// Binate Covering Problem (BCP) — the generalisation of unate covering the
// paper's introduction situates its work within (survey: Villa et al. [23]).
//
//   min c'x   s.t. every row (clause) is satisfied:
//             ∨_{j ∈ P_i} x_j  ∨  ∨_{j ∈ N_i} ¬x_j,     x ∈ {0,1}^|P|
//
// UCP is the special case N_i = ∅ for all rows. Unlike UCP, a BCP can be
// infeasible. The module provides:
//   * the clause matrix with unit propagation;
//   * reductions: unit clauses (essentials / unacceptables), clause
//     (row) dominance, pure-literal elimination for cost-free phases;
//   * an exact branch-and-bound with a positive-clause MIS lower bound;
// all validated against exhaustive search in the tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "matrix/sparse_matrix.hpp"

namespace ucp::bcp {

using cov::Cost;
using cov::Index;

/// A column literal inside a clause.
struct Literal {
    Index col = 0;
    bool positive = true;

    friend bool operator==(const Literal&, const Literal&) = default;
    friend auto operator<=>(const Literal&, const Literal&) = default;
};

class BcpMatrix {
public:
    BcpMatrix() = default;

    /// Builds from per-row literal lists. Duplicate literals collapse; a row
    /// containing both phases of a column is a tautology and is dropped.
    static BcpMatrix from_rows(Index num_cols,
                               std::vector<std::vector<Literal>> rows,
                               std::vector<Cost> costs = {});

    /// Lifts a unate covering matrix (all literals positive).
    static BcpMatrix from_unate(const cov::CoverMatrix& m);

    [[nodiscard]] Index num_rows() const noexcept {
        return static_cast<Index>(rows_.size());
    }
    [[nodiscard]] Index num_cols() const noexcept {
        return static_cast<Index>(costs_.size());
    }
    [[nodiscard]] const std::vector<Literal>& row(Index i) const {
        return rows_[i];
    }
    [[nodiscard]] Cost cost(Index j) const { return costs_[j]; }
    [[nodiscard]] const std::vector<Cost>& costs() const noexcept {
        return costs_;
    }

    /// Is the clause satisfied by the full 0/1 assignment?
    [[nodiscard]] bool row_satisfied(Index i,
                                     const std::vector<bool>& x) const;
    /// Are all clauses satisfied?
    [[nodiscard]] bool is_feasible(const std::vector<bool>& x) const;
    [[nodiscard]] Cost assignment_cost(const std::vector<bool>& x) const;

private:
    std::vector<std::vector<Literal>> rows_;
    std::vector<Cost> costs_;
};

struct BcpOptions {
    std::size_t max_nodes = 20'000'000;
    double time_limit_seconds = 0.0;
    bool use_row_dominance = true;
};

struct BcpResult {
    bool feasible = false;
    bool optimal = false;          ///< search completed (vs budget truncation)
    std::vector<bool> assignment;  ///< defined when feasible
    Cost cost = 0;
    Cost lower_bound = 0;
    std::size_t nodes = 0;
    double seconds = 0.0;
};

/// Exact branch-and-bound BCP solver.
BcpResult solve_bcp(const BcpMatrix& m, const BcpOptions& opt = {});

/// Lower bound from the positive-only clauses: pairwise column-disjoint
/// positive clauses each force at least their cheapest positive column
/// (negative literals can always be satisfied for free elsewhere, so only
/// all-positive clauses contribute).
Cost positive_mis_bound(const BcpMatrix& m);

}  // namespace ucp::bcp
