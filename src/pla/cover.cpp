#include "pla/cover.hpp"

#include <sstream>
#include <unordered_set>

namespace ucp::pla {

void Cover::add(Cube c) {
    UCP_REQUIRE(c.valid(space_), "attempt to add an empty cube to a cover");
    cubes_.push_back(std::move(c));
}

bool Cover::add_if_valid(Cube c) {
    if (!c.valid(space_)) return false;
    cubes_.push_back(std::move(c));
    return true;
}

void Cover::remove_at(std::size_t i) {
    UCP_REQUIRE(i < cubes_.size(), "index out of range");
    cubes_.erase(cubes_.begin() + static_cast<std::ptrdiff_t>(i));
}

Cover Cover::from_strings(
    const CubeSpace& s,
    const std::vector<std::pair<std::string, std::string>>& rows) {
    Cover c(s);
    for (const auto& [in_part, out_part] : rows)
        c.add(Cube::parse(s, in_part, out_part));
    return c;
}

void Cover::remove_single_cube_contained() {
    std::vector<bool> dead(cubes_.size(), false);
    for (std::size_t i = 0; i < cubes_.size(); ++i) {
        if (dead[i]) continue;
        for (std::size_t j = 0; j < cubes_.size(); ++j) {
            if (i == j || dead[j]) continue;
            if (cubes_[i].contains(space_, cubes_[j])) {
                // Equal cubes: keep the earlier one.
                if (cubes_[j].contains(space_, cubes_[i]) && j < i) continue;
                dead[j] = true;
            }
        }
    }
    std::vector<Cube> kept;
    kept.reserve(cubes_.size());
    for (std::size_t i = 0; i < cubes_.size(); ++i)
        if (!dead[i]) kept.push_back(std::move(cubes_[i]));
    cubes_ = std::move(kept);
}

void Cover::remove_duplicates() {
    std::unordered_set<std::size_t> seen_hashes;
    std::vector<Cube> kept;
    kept.reserve(cubes_.size());
    for (auto& c : cubes_) {
        const std::size_t h = c.hash();
        if (seen_hashes.count(h) != 0) {
            bool dup = false;
            for (const auto& k : kept)
                if (k == c) {
                    dup = true;
                    break;
                }
            if (dup) continue;
        }
        seen_hashes.insert(h);
        kept.push_back(std::move(c));
    }
    cubes_ = std::move(kept);
}

Cover Cover::restricted_to_output(std::uint32_t k) const {
    UCP_REQUIRE(k < space_.num_outputs, "output index out of range");
    const CubeSpace in_space{space_.num_inputs, 0};
    Cover out(in_space);
    for (const auto& c : cubes_) {
        if (!c.out(space_, k)) continue;
        Cube ic = Cube::full_inputs(in_space);
        for (std::uint32_t i = 0; i < space_.num_inputs; ++i)
            ic.set_in(in_space, i, c.in(space_, i));
        out.add(std::move(ic));
    }
    return out;
}

Cover Cover::inputs_only() const {
    const CubeSpace in_space{space_.num_inputs, 0};
    Cover out(in_space);
    for (const auto& c : cubes_) {
        Cube ic = Cube::full_inputs(in_space);
        for (std::uint32_t i = 0; i < space_.num_inputs; ++i)
            ic.set_in(in_space, i, c.in(space_, i));
        out.add(std::move(ic));
    }
    return out;
}

void Cover::append(const Cover& other) {
    UCP_REQUIRE(other.space_ == space_, "cover space mismatch");
    cubes_.insert(cubes_.end(), other.cubes_.begin(), other.cubes_.end());
}

bool Cover::has_universal_input_cube() const {
    for (const auto& c : cubes_)
        if (c.input_literal_count(space_) == 0) return true;
    return false;
}

bool Cover::eval(const std::vector<std::uint64_t>& assignment,
                 std::uint32_t k) const {
    for (const auto& c : cubes_) {
        if (space_.num_outputs > 0 && !c.out(space_, k)) continue;
        if (c.covers_assignment(space_, assignment)) return true;
    }
    return false;
}

void Cover::for_each_assignment(const std::function<void(std::uint64_t)>& fn) const {
    UCP_REQUIRE(space_.num_inputs <= 24, "exhaustive iteration limited to 24 inputs");
    const std::uint64_t limit = 1ULL << space_.num_inputs;
    for (std::uint64_t a = 0; a < limit; ++a) fn(a);
}

double Cover::point_count_upper() const {
    double total = 0.0;
    for (const auto& c : cubes_) total += c.point_count(space_);
    return total;
}

std::size_t Cover::literal_count() const {
    std::size_t n = 0;
    for (const auto& c : cubes_) n += c.input_literal_count(space_);
    return n;
}

std::string Cover::to_string() const {
    std::ostringstream os;
    for (const auto& c : cubes_) os << c.to_string(space_) << '\n';
    return os.str();
}

}  // namespace ucp::pla
