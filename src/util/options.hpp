// Minimal command-line option parser for examples and benchmark binaries.
//
// Syntax: "--key=value", "--flag" (boolean true) and bare positional arguments.
// Unknown options are kept and can be listed, so binaries can warn about typos.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ucp {

class Options {
public:
    Options() = default;
    Options(int argc, const char* const* argv);

    /// True if "--name" or "--name=..." was given.
    [[nodiscard]] bool has(const std::string& name) const;

    [[nodiscard]] std::string get(const std::string& name,
                                  const std::string& fallback = "") const;
    [[nodiscard]] long get_int(const std::string& name, long fallback) const;
    [[nodiscard]] double get_double(const std::string& name, double fallback) const;
    [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

    [[nodiscard]] const std::vector<std::string>& positional() const {
        return positional_;
    }

    /// All option keys that were present on the command line.
    [[nodiscard]] std::vector<std::string> keys() const;

private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

}  // namespace ucp
