// Portfolio solver: SCG multi-starts + RWLS local-search polish under one
// shared Budget, with incumbents cross-seeded both ways (docs/ALGORITHM.md,
// "Beyond the constructive scheme"; DESIGN.md §14).
//
// The phases run in a fixed order so the result is bit-identical for every
// thread count:
//
//   1. SCG — exactly the configured multi-start solve (so the portfolio's
//      answer can never be worse than SCG alone at the same options);
//   2. RWLS polish — `rwls_tasks` independent local searches on the
//      ThreadPool, every task seeded from the best SCG cover (cross-seed
//      SCG → RWLS) with its own SplitMix64 seed stream and its own fork() of
//      the governor; results reduce by (cost, task index);
//   3. SCG re-seed — when RWLS improved the incumbent, one more SCG solve
//      warm-started with it (cross-seed RWLS → the Lagrangian fixing rule,
//      via ScgOptions::warm_solution);
//   4. optional exact finish — branch-and-bound warm-started with the best
//      cover so far (cross-seed RWLS → the BnB incumbent, via
//      BnbOptions::warm_solution).
//
// Each later phase replaces the incumbent only when strictly better, and the
// lower bound is the max over phases, so the anytime contract holds: a
// governor trip at any point leaves a feasible cover and a valid bound.
#pragma once

#include <cstdint>
#include <vector>

#include "search/rwls.hpp"
#include "solver/bnb.hpp"
#include "solver/scg.hpp"

namespace ucp::solver {

struct PortfolioOptions {
    /// Phase-1 options, passed through verbatim — the portfolio's SCG leg is
    /// the SCG-alone solve, which is what makes "portfolio ≤ SCG at equal
    /// options" hold by construction.
    ScgOptions scg{};
    /// Per-task template for the polish phase. `initial` is overwritten with
    /// the best SCG cover; task 0 uses `rwls.seed` verbatim, task t > 0 an
    /// independent SplitMix64 stream (the multi-start seed convention).
    search::RwlsOptions rwls{};
    /// Independent RWLS polish tasks (0 disables the polish phase).
    int rwls_tasks = 4;
    /// Worker threads for the polish fan-out. 0 = auto
    /// (ThreadPool::default_threads()), 1 = serial. Results are bit-identical
    /// for every value.
    int num_threads = 0;
    /// Phase 3: re-run SCG warm-seeded with the RWLS incumbent when RWLS
    /// improved on phase 1 (the tightened target makes the penalty tests fix
    /// more columns — often closing the gap outright).
    bool reseed_scg = true;
    /// Phase 4: finish with branch-and-bound warm-started from the portfolio
    /// incumbent. Off by default — exactness costs exponential time on hard
    /// cores; the portfolio is a heuristic first.
    bool finish_exact = false;
    /// Phase-4 options (`warm_solution` is overwritten with the incumbent).
    BnbOptions exact{};
    /// Shared governor: polled between phases, and every SCG start / RWLS
    /// task runs under its own fork() (shared deadline + cancel token,
    /// private counters). A trip skips the remaining phases and returns the
    /// best cover found so far. Not owned; nullptr = ungoverned.
    Budget* governor = nullptr;
};

struct PortfolioResult {
    std::vector<cov::Index> solution;  ///< original column indices, feasible
    cov::Cost cost = 0;
    cov::Cost lower_bound = 0;  ///< max over phases (each is globally valid)
    bool proved_optimal = false;
    /// Which phase produced `solution`: 1 = SCG, 2 = RWLS polish, 3 = SCG
    /// re-seed, 4 = exact finish.
    int winner_phase = 1;
    int rwls_task_of_best = -1;  ///< winning polish task, -1 when phase 2 lost
    cov::Cost scg_cost = 0;      ///< phase-1 cost (the SCG-alone answer)
    cov::Cost rwls_cost = 0;     ///< best cost after the polish phase
    std::uint64_t rwls_steps = 0;  ///< local-search steps across every task
    int rwls_tasks_run = 0;
    bool exact_ran = false;
    Status status = Status::kOk;  ///< first non-kOk phase status, else kOk
    double seconds = 0.0;
};

PortfolioResult solve_portfolio(const cov::CoverMatrix& m,
                                const PortfolioOptions& opt = {});

}  // namespace ucp::solver
