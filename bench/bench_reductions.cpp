// Microbenchmark of the dominance kernels in matrix/reductions.cpp: the
// sorted-vector merge (reference) vs the bit-packed word-wise subset test
// (BitMatrix). Expected shape: on dense matrices the bitset kernel wins by a
// growing factor as the matrix grows; on very sparse matrices the merge path
// stays competitive — which is exactly why ReduceOptions::use_bitset
// defaults to kAuto with a density threshold.
//
// Both kernels must produce identical cores (also enforced by
// tests/test_bitset_reductions.cpp); this bench re-checks while timing.
#include "bench_common.hpp"

#include "gen/scp_gen.hpp"
#include "matrix/reductions.hpp"
#include "util/rng.hpp"

namespace {

using ucp::TextTable;
using ucp::cov::BitsetMode;
using ucp::cov::CoverMatrix;
using ucp::cov::ReduceOptions;

double time_reduce(const CoverMatrix& m, BitsetMode mode, int reps,
                   ucp::cov::ReduceResult& last) {
    ReduceOptions opt;
    opt.use_bitset = mode;
    ucp::Timer t;
    for (int r = 0; r < reps; ++r) last = ucp::cov::reduce(m, {}, opt);
    return t.seconds() * 1e3 / reps;
}

}  // namespace

int main(int argc, char** argv) {
    ucp::bench::JsonReporter json(argc, argv, "reductions");
    ucp::bench::print_header(
        "Reductions microbenchmark — sorted-vector vs bit-packed dominance",
        "Same cyclic cores from both kernels; the bitset kernel should win\n"
        "on the dense rows and the auto mode should track the winner.");

    struct Config {
        ucp::cov::Index rows, cols;
        double density;
        int reps;
    };
    const std::vector<Config> configs{
        {200, 200, 0.30, 5}, {400, 400, 0.30, 3}, {800, 800, 0.20, 2},
        {400, 400, 0.10, 3}, {800, 800, 0.05, 2}, {1200, 1200, 0.01, 2},
    };

    TextTable t({"rows x cols", "density", "sorted ms", "bitset ms", "speedup",
                 "auto kernel", "core", "match"});
    ucp::Rng seeds(0xb17);
    for (const auto& cfg : configs) {
        ucp::gen::RandomScpOptions g;
        g.rows = cfg.rows;
        g.cols = cfg.cols;
        g.density = cfg.density;
        g.min_cost = 1;
        g.max_cost = 3;
        g.seed = seeds();
        const CoverMatrix m = ucp::gen::random_scp(g);

        // --min-of N re-runs each timed section N times and keeps the
        // minimum per-rep time (median recorded alongside).
        ucp::cov::ReduceResult sorted_res, bitset_res, auto_res;
        double sorted_ms = 0.0, bitset_ms = 0.0;
        const ucp::bench::RepeatTiming rt_sorted =
            ucp::bench::time_min_of(json.min_of(), [&] {
                sorted_ms = time_reduce(m, BitsetMode::kOff, cfg.reps, sorted_res);
            });
        const ucp::bench::RepeatTiming rt_bitset =
            ucp::bench::time_min_of(json.min_of(), [&] {
                bitset_ms = time_reduce(m, BitsetMode::kOn, cfg.reps, bitset_res);
            });
        if (json.min_of() > 1) {
            sorted_ms = rt_sorted.min_ms / cfg.reps;
            bitset_ms = rt_bitset.min_ms / cfg.reps;
        }
        time_reduce(m, BitsetMode::kAuto, 1, auto_res);

        const bool match =
            sorted_res.core_col_map == bitset_res.core_col_map &&
            sorted_res.core_row_map == bitset_res.core_row_map &&
            sorted_res.essential_cols == bitset_res.essential_cols;

        const std::string name = std::to_string(cfg.rows) + "x" +
                                 std::to_string(cfg.cols) + "@" +
                                 TextTable::num(cfg.density, 2);
        t.add_row({std::to_string(cfg.rows) + "x" + std::to_string(cfg.cols),
                   TextTable::num(cfg.density, 2), TextTable::num(sorted_ms, 2),
                   TextTable::num(bitset_ms, 2),
                   TextTable::num(sorted_ms / bitset_ms, 2),
                   auto_res.used_bitset_kernel ? "bitset" : "sorted",
                   std::to_string(sorted_res.core.num_rows()) + "x" +
                       std::to_string(sorted_res.core.num_cols()),
                   match ? "yes" : "NO"});
        std::vector<std::pair<std::string, double>> extra{
            {"sorted_ms", sorted_ms},
            {"bitset_ms", bitset_ms},
            {"speedup", sorted_ms / bitset_ms},
            {"match", match ? 1.0 : 0.0}};
        if (json.min_of() > 1) {
            extra.emplace_back("bitset_median_ms",
                               rt_bitset.median_ms / cfg.reps);
            extra.emplace_back("repeats",
                               static_cast<double>(rt_bitset.repeats));
        }
        json.record(name, static_cast<double>(sorted_res.core.num_rows()),
                    bitset_ms, extra);
        if (!match) {
            std::cerr << "KERNEL MISMATCH on " << name << "\n";
            return 1;
        }
    }
    t.print(std::cout);
    std::cout << "\n(speedup > 1 means the bit-packed kernel is faster; the\n"
                 "auto column shows which kernel BitsetMode::kAuto picked)\n";
    return 0;
}
