// Algebraic property tests across modules: Shannon expansion for URP covers,
// ZDD operator laws, idempotence of the minimiser phases, monotonicity of the
// subgradient trace.
#include <gtest/gtest.h>

#include <set>

#include "espresso/espresso.hpp"
#include "gen/pla_gen.hpp"
#include "gen/scp_gen.hpp"
#include "lagrangian/subgradient.hpp"
#include "pla/urp.hpp"
#include "primes/explicit_primes.hpp"
#include "solver/two_level.hpp"
#include "util/rng.hpp"
#include "zdd/zdd.hpp"

namespace {

using ucp::Rng;
using ucp::pla::Cover;
using ucp::pla::Cube;
using ucp::pla::CubeSpace;
using ucp::pla::Lit;
using ucp::zdd::Var;
using ucp::zdd::Zdd;
using ucp::zdd::ZddManager;

Cover random_input_cover(Rng& rng, std::uint32_t n, std::size_t cubes,
                         double lit_prob) {
    const CubeSpace s{n, 0};
    Cover f(s);
    for (std::size_t c = 0; c < cubes; ++c) {
        Cube cube = Cube::full_inputs(s);
        for (std::uint32_t i = 0; i < n; ++i)
            if (rng.chance(lit_prob))
                cube.set_in(s, i, rng.chance(0.5) ? Lit::kOne : Lit::kZero);
        f.add(std::move(cube));
    }
    return f;
}

TEST(MoreProperties, ShannonExpansionHolds) {
    // f ≡ x·f_x ∪ x̄·f_x̄ for every variable (URP cofactor semantics).
    Rng rng(401);
    for (int trial = 0; trial < 15; ++trial) {
        const std::uint32_t n = 5;
        const CubeSpace s{n, 0};
        const Cover f = random_input_cover(rng, n, 6, 0.5);
        for (std::uint32_t v = 0; v < n; ++v) {
            Cube px = Cube::full_inputs(s), pnx = Cube::full_inputs(s);
            px.set_in(s, v, Lit::kOne);
            pnx.set_in(s, v, Lit::kZero);
            Cover expansion(s);
            Cover fx = ucp::pla::cofactor(f, px);
            Cover fnx = ucp::pla::cofactor(f, pnx);
            // Re-impose the literals.
            for (std::size_t i = 0; i < fx.size(); ++i) {
                Cube c = fx[i];
                c.set_in(s, v, Lit::kOne);
                expansion.add_if_valid(std::move(c));
            }
            for (std::size_t i = 0; i < fnx.size(); ++i) {
                Cube c = fnx[i];
                c.set_in(s, v, Lit::kZero);
                expansion.add_if_valid(std::move(c));
            }
            EXPECT_TRUE(ucp::pla::covers_equal(f, expansion)) << "var " << v;
        }
    }
}

TEST(MoreProperties, ZddAlgebraLaws) {
    Rng rng(403);
    ZddManager mgr(8);
    auto random_family = [&](std::size_t count) {
        Zdd out = mgr.empty();
        for (std::size_t i = 0; i < count; ++i) {
            std::vector<Var> s;
            for (Var v = 0; v < 8; ++v)
                if (rng.chance(0.35)) s.push_back(v);
            out = mgr.union_(out, mgr.set_of(s));
        }
        return out;
    };
    for (int trial = 0; trial < 20; ++trial) {
        const Zdd a = random_family(8);
        const Zdd b = random_family(8);
        const Zdd c = random_family(8);
        // Distributivity of ∩ over ∪ (canonicity makes these id-comparable).
        EXPECT_EQ((a & (b | c)).id(), ((a & b) | (a & c)).id());
        // De-Morgan-ish via difference: a − (b ∪ c) = (a − b) − c.
        EXPECT_EQ((a - (b | c)).id(), ((a - b) - c).id());
        // Product distributes over union.
        EXPECT_EQ((a * (b | c)).id(), ((a * b) | (a * c)).id());
        // maximal/minimal are idempotent and conservative.
        EXPECT_EQ(mgr.maximal(mgr.maximal(a)).id(), mgr.maximal(a).id());
        EXPECT_EQ(mgr.minimal(mgr.minimal(a)).id(), mgr.minimal(a).id());
        EXPECT_EQ(mgr.diff(mgr.maximal(a), a).count(), 0.0);
        // sup_set(a, a) = a (every set contains itself).
        EXPECT_EQ(mgr.sup_set(a, a).id(), a.id());
        EXPECT_EQ(mgr.sub_set(a, a).id(), a.id());
        // sup/sub duality against the brute definition is in test_zdd;
        // here: sub_set(a,b) ⊆ a.
        EXPECT_EQ(mgr.diff(mgr.sub_set(a, b), a).count(), 0.0);
    }
}

TEST(MoreProperties, ExpandIsIdempotentOnItsOutput) {
    Rng seeds(405);
    for (int trial = 0; trial < 8; ++trial) {
        ucp::gen::RandomPlaOptions g;
        g.num_inputs = 6;
        g.num_outputs = 2;
        g.num_cubes = 14;
        g.literal_prob = 0.55;
        g.dc_fraction = 0.2;
        g.seed = seeds();
        const auto p = ucp::gen::random_pla(g);
        const auto offsets = ucp::esp::compute_offsets(p);
        const Cover once = ucp::esp::expand(p.on, offsets);
        const Cover twice = ucp::esp::expand(once, offsets);
        // Expanding an already-expanded cover must not change the cube count
        // (cubes are already maximal under the expansion order).
        EXPECT_EQ(once.size(), twice.size());
        EXPECT_TRUE(ucp::pla::covers_equal(once, twice));
    }
}

TEST(MoreProperties, IrredundantIsIdempotent) {
    Rng seeds(407);
    for (int trial = 0; trial < 8; ++trial) {
        ucp::gen::RandomPlaOptions g;
        g.num_inputs = 6;
        g.num_outputs = 1;
        g.num_cubes = 16;
        g.literal_prob = 0.5;
        g.seed = seeds();
        const auto p = ucp::gen::random_pla(g);
        const auto offsets = ucp::esp::compute_offsets(p);
        const Cover e = ucp::esp::expand(p.on, offsets);
        const Cover once = ucp::esp::irredundant(e, p.dc);
        const Cover twice = ucp::esp::irredundant(once, p.dc);
        EXPECT_EQ(once.size(), twice.size());
    }
}

TEST(MoreProperties, SubgradientTraceInvariants) {
    ucp::gen::RandomScpOptions g;
    g.rows = 30;
    g.cols = 50;
    g.density = 0.1;
    g.seed = 17;
    const auto m = ucp::gen::random_scp(g);
    ucp::lagr::SubgradientOptions opt;
    opt.record_trace = true;
    const auto sub = ucp::lagr::subgradient_ascent(m, opt);
    ASSERT_FALSE(sub.trace.empty());
    double prev_lb = -1;
    ucp::cov::Cost prev_inc = std::numeric_limits<ucp::cov::Cost>::max();
    for (const auto& p : sub.trace) {
        EXPECT_GE(p.lb_best, prev_lb);          // LB monotone (paper §3.2)
        EXPECT_LE(p.incumbent, prev_inc);       // incumbent monotone
        EXPECT_GE(p.lb_best, p.z_lambda - 1e9); // trivially sane
        EXPECT_GT(p.step, 0.0);
        prev_lb = p.lb_best;
        prev_inc = p.incumbent;
    }
    EXPECT_NEAR(sub.lb_fractional, sub.trace.back().lb_best, 1e-9);
}

TEST(MoreProperties, CofactorOfCoverByItsOwnCubeIsTautology) {
    Rng rng(409);
    for (int trial = 0; trial < 20; ++trial) {
        const Cover f = random_input_cover(rng, 6, 8, 0.5);
        for (std::size_t i = 0; i < f.size(); ++i)
            EXPECT_TRUE(ucp::pla::is_tautology(ucp::pla::cofactor(f, f[i])));
    }
}

TEST(MoreProperties, PrimesOfPrimesAreTheSamePrimes) {
    // primes(primes(f)) == primes(f) — the prime set is closed.
    Rng rng(411);
    for (int trial = 0; trial < 6; ++trial) {
        const Cover f = random_input_cover(rng, 5, 6, 0.5);
        const auto p1 = ucp::primes::primes_by_consensus(f);
        const auto p2 = ucp::primes::primes_by_consensus(p1);
        std::set<std::string> s1, s2;
        for (const auto& c : p1) s1.insert(c.to_string(f.space()));
        for (const auto& c : p2) s2.insert(c.to_string(f.space()));
        EXPECT_EQ(s1, s2);
    }
}

}  // namespace
