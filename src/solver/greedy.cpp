#include "solver/greedy.hpp"

#include "lagrangian/greedy_heuristics.hpp"

namespace ucp::solver {

GreedyResult chvatal_greedy(const cov::CoverMatrix& m) {
    std::vector<double> cost(m.num_cols());
    for (cov::Index j = 0; j < m.num_cols(); ++j)
        cost[j] = static_cast<double>(m.cost(j));
    GreedyResult out;
    out.solution =
        lagr::lagrangian_greedy(m, cost, lagr::GreedyVariant::kCostOverRows);
    out.cost = m.solution_cost(out.solution);
    return out;
}

}  // namespace ucp::solver
