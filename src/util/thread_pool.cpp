#include "util/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace ucp {

ThreadPool::ThreadPool(unsigned num_threads) {
    if (num_threads <= 1) return;  // inline mode
    workers_.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    job_ready_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
    if (workers_.empty()) {
        job();
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        jobs_.push(std::move(job));
        ++in_flight_;
    }
    job_ready_.notify_one();
}

void ThreadPool::wait() {
    if (workers_.empty()) return;
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) submit([&fn, i] { fn(i); });
    wait();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            job_ready_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
            if (jobs_.empty()) return;  // stop_ set and queue drained
            job = std::move(jobs_.front());
            jobs_.pop();
        }
        job();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            if (--in_flight_ == 0) all_done_.notify_all();
        }
    }
}

unsigned ThreadPool::hardware_threads() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

unsigned ThreadPool::default_threads() noexcept {
    if (const char* env = std::getenv("UCP_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0) return static_cast<unsigned>(v);
    }
    return hardware_threads();
}

}  // namespace ucp
