#include "matrix/sub_matrix.hpp"

#include <algorithm>

#include "kernels/sparse_ops.hpp"

namespace ucp::cov {

void SubMatrix::reset(const CoverMatrix& base) {
    base_ = &base;
    const Index R = base.num_rows();
    const Index C = base.num_cols();
    row_alive_.assign(R, 1);
    col_alive_.assign(C, 1);
    row_len_.resize(R);
    col_len_.resize(C);
    for (Index i = 0; i < R; ++i)
        row_len_[i] = static_cast<Index>(base.row(i).size());
    for (Index j = 0; j < C; ++j)
        col_len_[j] = static_cast<Index>(base.col(j).size());
    live_rows_ = R;
    live_cols_ = C;
}

double SubMatrix::live_fraction() const noexcept {
    const Index R = base_->num_rows();
    const Index C = base_->num_cols();
    if (R == 0 || C == 0) return 1.0;
    const double fr = static_cast<double>(live_rows_) / static_cast<double>(R);
    const double fc = static_cast<double>(live_cols_) / static_cast<double>(C);
    return std::min(fr, fc);
}

bool SubMatrix::is_feasible(const std::vector<Index>& solution) const {
    std::vector<bool> in_sol(num_cols(), false);
    for (const Index j : solution) {
        UCP_REQUIRE(j < num_cols(), "solution column out of range");
        in_sol[j] = true;
    }
    for (Index i = 0; i < num_rows(); ++i) {
        if (row_alive_[i] == 0) continue;
        bool covered = false;
        for (const Index j : base_->row(i))
            if (in_sol[j]) {
                covered = true;
                break;
            }
        if (!covered) return false;
    }
    return true;
}

Cost SubMatrix::solution_cost(const std::vector<Index>& solution) const {
    Cost total = 0;
    for (const Index j : solution) total += base_->cost(j);
    return total;
}

std::vector<Index> SubMatrix::make_irredundant(std::vector<Index> solution) const {
    UCP_REQUIRE(is_feasible(solution), "make_irredundant needs a feasible solution");
    std::vector<Index> cover_count(num_rows(), 0);
    std::vector<bool> selected(num_cols(), false);
    for (const Index j : solution) {
        if (selected[j]) continue;  // duplicates contribute once
        selected[j] = true;
        for (const Index i : base_->col(j))
            if (row_alive_[i] != 0) ++cover_count[i];
    }
    std::sort(solution.begin(), solution.end());
    solution.erase(std::unique(solution.begin(), solution.end()), solution.end());
    std::vector<Index> order = solution;
    std::sort(order.begin(), order.end(), [&](Index a, Index b) {
        return base_->cost(a) != base_->cost(b) ? base_->cost(a) > base_->cost(b)
                                                : a > b;
    });
    for (const Index j : order) {
        bool redundant = true;
        for (const Index i : base_->col(j)) {
            if (row_alive_[i] == 0) continue;
            if (cover_count[i] == 1) {
                redundant = false;
                break;
            }
        }
        if (redundant) {
            selected[j] = false;
            for (const Index i : base_->col(j))
                if (row_alive_[i] != 0) --cover_count[i];
        }
    }
    std::vector<Index> out;
    for (const Index j : solution)
        if (selected[j]) out.push_back(j);
    return out;
}

CoverMatrix SubMatrix::compact(std::vector<Index>& col_map,
                               std::vector<Index>& row_map) const {
    const Index R = num_rows();
    const Index C = num_cols();
    col_map.clear();
    row_map.clear();
    std::vector<Index> col_new(C, 0);
    for (Index j = 0; j < C; ++j) {
        if (col_alive_[j] != 0) {
            col_new[j] = static_cast<Index>(col_map.size());
            col_map.push_back(j);
        }
    }
    std::vector<Cost> costs;
    costs.reserve(col_map.size());
    for (const Index j : col_map) costs.push_back(base_->cost(j));
    // Emit the surviving rows straight into flat CSR form: the filtered spans
    // stay sorted and distinct (col_new is monotone over alive columns), so
    // from_csr skips the per-row allocation + normalisation of from_rows.
    std::vector<std::size_t> row_off;
    row_off.reserve(static_cast<std::size_t>(live_rows_) + 1);
    row_off.push_back(0);
    std::size_t total = 0;
    for (Index i = 0; i < R; ++i)
        if (row_alive_[i] != 0) total += row_len_[i];
    std::vector<Index> row_idx(total);
    std::size_t out = 0;
    for (Index i = 0; i < R; ++i) {
        if (row_alive_[i] == 0) continue;
        const IndexSpan span = base_->row(i);
        const std::size_t written = kern::filter_remap(
            row_idx.data() + out, span.data(), span.size(), col_alive_.data(),
            col_new.data());
        UCP_ASSERT(written == row_len_[i] && written > 0);
        out += written;
        row_off.push_back(out);
        row_map.push_back(i);
    }
    return CoverMatrix::from_csr(static_cast<Index>(col_map.size()),
                                 std::move(row_off), std::move(row_idx),
                                 std::move(costs));
}

void SubMatrix::validate() const {
    Index lr = 0, lc = 0;
    for (Index i = 0; i < num_rows(); ++i) {
        if (row_alive_[i] == 0) continue;
        ++lr;
        Index len = 0;
        for (const Index j : base_->row(i))
            if (col_alive_[j] != 0) ++len;
        UCP_ASSERT(len == row_len_[i]);
    }
    for (Index j = 0; j < num_cols(); ++j) {
        if (col_alive_[j] == 0) continue;
        ++lc;
        Index len = 0;
        for (const Index i : base_->col(j))
            if (row_alive_[i] != 0) ++len;
        UCP_ASSERT(len == col_len_[j]);
    }
    UCP_ASSERT(lr == live_rows_);
    UCP_ASSERT(lc == live_cols_);
}

}  // namespace ucp::cov
