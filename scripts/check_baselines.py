#!/usr/bin/env python3
"""Compare fresh BENCH_*.json runs against the committed baselines.

Solution fields (cost, proved, closed, bounds, match, ...) must be
bit-identical across commits, thread counts and engine rewrites — a drift
means the optimiser's *answers* changed, not just its speed. Timing fields
and performance counters are expected to move and are ignored.

The anytime "status" field is handled separately: it is excluded from the
drift comparison (older baselines predate it) but every fresh record that
carries one must say "ok" — a budget trip during an ungoverned baseline run
is a bug, not a timing artefact.

Usage: scripts/check_baselines.py [--baselines DIR] [--fresh DIR]

Exit status is non-zero when any solution field drifted or a baseline has no
fresh counterpart.
"""

import argparse
import json
import sys
from pathlib import Path

# Fields that measure speed, not answers. Everything else in a record must
# match the baseline exactly. Any field ending in `_ms` or `_seconds` is
# timing by convention (wall_ms, bitset_ms, the --min-of wall_min_ms /
# wall_median_ms extras, ...), as are the throughput and repeat-count fields
# the --min-of runs append — so a fresh run taken with --min-of=N still
# compares clean against a baseline recorded without it.
TIMING_FIELDS = {
    "speedup",
    "seconds",
    "repeats",  # --min-of repetition count, varies per invocation
    "throughput_per_s",
    "counters",  # perf counters (cache hits, GC runs, ...) move freely
    "status",  # checked separately: fresh runs must report "ok"
}


def is_timing_field(key: str) -> bool:
    return (
        key in TIMING_FIELDS
        or key.endswith("_ms")
        or key.endswith("_seconds")
    )


def solution_view(record: dict) -> dict:
    return {k: v for k, v in record.items() if not is_timing_field(k)}


def compare_file(baseline_path: Path, fresh_path: Path) -> list[str]:
    """Returns a list of human-readable drift descriptions (empty = clean)."""
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())

    if "benchmarks" in baseline:
        # google-benchmark output (micro suites): timing only, nothing to pin.
        return []

    drifts = []
    base_records = {r["instance"]: r for r in baseline["records"]}
    fresh_records = {r["instance"]: r for r in fresh.get("records", [])}

    for instance, base_rec in base_records.items():
        fresh_rec = fresh_records.get(instance)
        if fresh_rec is None:
            drifts.append(f"{instance}: missing from fresh run")
            continue
        want, got = solution_view(base_rec), solution_view(fresh_rec)
        for key in sorted(set(want) | set(got)):
            if want.get(key) != got.get(key):
                drifts.append(
                    f"{instance}.{key}: baseline={want.get(key)!r} "
                    f"fresh={got.get(key)!r}"
                )
        status = fresh_rec.get("status", "ok")
        if status != "ok":
            drifts.append(
                f"{instance}.status: fresh run reports {status!r} "
                f"(budget tripped during an ungoverned baseline run)"
            )
    return drifts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", default="bench/baselines", type=Path)
    parser.add_argument("--fresh", default=".", type=Path)
    args = parser.parse_args()

    baseline_files = sorted(args.baselines.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"error: no baselines in {args.baselines}", file=sys.stderr)
        return 2

    failed = False
    for baseline_path in baseline_files:
        fresh_path = args.fresh / baseline_path.name
        if not fresh_path.exists():
            print(f"MISSING  {baseline_path.name}: no fresh run at {fresh_path}")
            failed = True
            continue
        drifts = compare_file(baseline_path, fresh_path)
        if drifts:
            failed = True
            print(f"DRIFT    {baseline_path.name}:")
            for d in drifts:
                print(f"         {d}")
        else:
            print(f"OK       {baseline_path.name}")

    if failed:
        print("\nsolution-field drift detected — the solver's answers changed.")
        print("If intentional, regenerate: scripts/bench_all.sh build bench/baselines")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
