// Berkeley PLA format reader / writer (the input format of the Espresso
// benchmark suite the paper evaluates on).
//
// Supported directives: .i .o .p .type (f, fd, fr, fdr) .ilb .ob .e/.end;
// unknown dot-directives are ignored with a warning callback. Output-plane
// characters: '1'/'4' = ON-set, '0' = OFF-set (fr/fdr types), '-'/'2'/'d' =
// DC-set (fd/fdr types), '~' = no information.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "pla/cover.hpp"
#include "util/status.hpp"

namespace ucp::pla {

/// A parsed PLA: the three planes of a Boolean function with don't-cares.
/// `on` and `dc` share one CubeSpace; `off` is only populated for fr/fdr
/// inputs (otherwise derived on demand by complementation).
struct Pla {
    std::string name;
    Cover on;   ///< F: the on-set cover
    Cover dc;   ///< D: the don't-care cover
    Cover off;  ///< R: the off-set cover (may be empty for type f / fd)
    std::vector<std::string> input_labels;
    std::vector<std::string> output_labels;
    std::string type = "fd";

    [[nodiscard]] const CubeSpace& space() const { return on.space(); }
};

/// Where and why a parse failed. `line` is 1-based; `column` is 1-based and
/// 0 when the error is not tied to a specific character (e.g. a truncated
/// directive or an unopenable file).
struct PlaDiagnostic {
    Status status = Status::kOk;
    std::size_t line = 0;
    std::size_t column = 0;
    std::string message;

    /// "PLA 'name' line L col C: message" (name passed by the caller).
    [[nodiscard]] std::string to_string(const std::string& name) const;
};

/// Non-throwing parser core: fills `out` and returns kOk, or leaves `out`
/// partially filled and returns kBadInput with `diag` describing the first
/// error (line/column/message). Never throws on malformed input.
Status parse_pla(std::istream& is, Pla& out, PlaDiagnostic& diag,
                 const std::string& name = "pla");
Status parse_pla_string(const std::string& text, Pla& out, PlaDiagnostic& diag,
                        const std::string& name = "pla");
/// File variant: kIoError when `path` cannot be opened, else as parse_pla.
Status parse_pla_file(const std::string& path, Pla& out, PlaDiagnostic& diag);

/// Throwing convenience wrappers over parse_pla: throw BadInputError (an
/// std::invalid_argument carrying Status::kBadInput) with the diagnostic's
/// line/column in the message.
Pla read_pla(std::istream& is, const std::string& name = "pla");
Pla read_pla_string(const std::string& text, const std::string& name = "pla");
Pla read_pla_file(const std::string& path);

/// Writes the on-set (and the dc-set if non-empty, as type fd) in PLA format.
void write_pla(std::ostream& os, const Pla& pla);
std::string write_pla_string(const Pla& pla);

}  // namespace ucp::pla
