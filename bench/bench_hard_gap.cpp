// Supplementary experiment: instances where the bounds CANNOT prove
// optimality — the situation behind the paper's parenthesised rows
// ("96(92)") and "H" best-known markers in Tables 3–4.
//
// Steiner-triple covering systems are the canonical family: the LP optimum
// is |points|/3 while the integer optimum is far above it (STS(9): 5 vs 3;
// STS(27): 18 vs 9), and none of the classical reductions fire. The SCG
// heuristic is expected to find the true optimum while honestly reporting a
// lower bound near the LP value; the exact solver needs a real search.
#include <iostream>

#include "bench_common.hpp"
#include "cover/zdd_cover.hpp"
#include "gen/scp_gen.hpp"
#include "lagrangian/dual_ascent.hpp"
#include "lp/simplex.hpp"
#include "matrix/reductions.hpp"
#include "solver/bnb.hpp"
#include "solver/greedy.hpp"
#include "solver/scg.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
    using ucp::TextTable;
    ucp::bench::JsonReporter json(argc, argv, "hard_gap");
    std::cout
        << "=== Hard-gap instances: Steiner-triple covering ===\n"
        << "(the regime behind the paper's unproved rows: LB < optimum, so\n"
        << "the heuristic reports Sol(LB) and exact search must close the "
           "gap)\n\n";

    TextTable t({"instance", "rows", "cols", "core", "LP", "SCG Sol(LB)",
                 "greedy", "exact", "nodes", "exact T(s)"});
    for (const int dim : {2, 3}) {
        const auto m = ucp::gen::steiner_cover(dim);
        const auto red = ucp::cov::reduce(m);
        const auto lp = ucp::lp::solve_covering_lp(m);
        ucp::Timer tscg;
        const auto scg = ucp::solver::solve_scg(m);
        json.record(std::string("STS(") + (dim == 2 ? "9" : "27") + ")",
                    static_cast<double>(scg.cost), tscg.seconds() * 1e3,
                    {{"lower_bound", static_cast<double>(scg.lower_bound)},
                     {"lp", lp.objective}});
        const auto greedy = ucp::solver::chvatal_greedy(m);
        ucp::solver::BnbOptions bo;
        bo.time_limit_seconds = 120.0;
        const auto exact = ucp::solver::solve_exact(m, bo);

        t.add_row({std::string("STS(") + (dim == 2 ? "9" : "27") + ")",
                   std::to_string(m.num_rows()), std::to_string(m.num_cols()),
                   std::to_string(red.core.num_rows()) + "x" +
                       std::to_string(red.core.num_cols()),
                   TextTable::num(lp.objective, 2),
                   std::to_string(scg.cost) +
                       (scg.proved_optimal
                            ? "*"
                            : "(" + std::to_string(scg.lower_bound) + ")"),
                   std::to_string(greedy.cost),
                   std::to_string(exact.cost) + (exact.optimal ? "" : "H"),
                   std::to_string(exact.nodes),
                   TextTable::num(exact.seconds)});
    }
    t.print(std::cout);

    // How many irredundant covers exist at all? (implicit enumeration +
    // exact counting — these counts overflow nothing, the ZDD stays small.)
    for (const int dim : {2, 3}) {
        const auto m = ucp::gen::steiner_cover(dim);
        try {
            ucp::zdd::ZddManager mgr(m.num_cols());
            const auto covers = ucp::cover::minimal_covers(mgr, m);
            std::cout << "\nSTS(" << (dim == 2 ? 9 : 27) << "): "
                      << mgr.count_exact(covers)
                      << " irredundant covers in total ("
                      << covers.node_count() << " ZDD nodes)";
        } catch (const std::exception& e) {
            std::cout << "\nSTS(" << (dim == 2 ? 9 : 27)
                      << "): enumeration guard hit (" << e.what() << ")";
        }
    }
    std::cout << "\n\nKnown optima: STS(9) = 5, STS(27) = 18. The Lagrangian "
                 "bound is capped by the LP value (3 / 9), so the gap is "
                 "structural, not a solver weakness — exactly the situation "
                 "of the paper's ex1010/test2/test3 rows.\n";
    return 0;
}
