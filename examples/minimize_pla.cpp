// Domain example: a full two-level minimisation flow for PLA files —
// reads a Berkeley-format PLA (from a file, or a named built-in benchmark
// instance), minimises it with the chosen solver, verifies the result and
// writes the minimised PLA.
//
//   $ ./minimize_pla --instance=bench1 [--solver=scg|exact|greedy]
//   $ ./minimize_pla my_function.pla --out=min.pla --compare-espresso
//   $ ./minimize_pla --instance=ex1010 --deadline-ms=500 --json
//
// The run is governed: --deadline-ms / --zdd-node-budget set the resource
// budget, and SIGINT (Ctrl-C) requests cooperative cancellation — in all
// three cases the best-so-far feasible cover is reported with its lower
// bound and a non-"ok" status instead of the process dying mid-solve.
#include <csignal>
#include <fstream>
#include <iostream>

#include "espresso/espresso.hpp"
#include "gen/suites.hpp"
#include "pla/pla_io.hpp"
#include "solver/two_level.hpp"
#include "util/options.hpp"
#include "util/trace.hpp"

namespace {

ucp::CancelToken g_cancel;

extern "C" void on_sigint(int) { g_cancel.cancel(); }

void print_json(std::ostream& os, const ucp::solver::TwoLevelResult& r) {
    os << "{\"status\": \"" << ucp::to_string(r.status) << "\""
       << ", \"products\": " << r.cost << ", \"literals\": " << r.literals
       << ", \"lower_bound\": " << r.lower_bound
       << ", \"proved_optimal\": " << (r.proved_optimal ? "true" : "false")
       << ", \"verified\": " << (r.verified ? "true" : "false")
       << ", \"num_primes\": " << r.num_primes
       << ", \"num_rows\": " << r.num_rows
       << ", \"total_seconds\": " << r.total_seconds << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
    const ucp::Options opts(argc, argv);
    try {
        ucp::pla::Pla pla;
        if (opts.has("instance")) {
            pla = ucp::gen::instance_by_name(opts.get("instance"));
        } else if (!opts.positional().empty()) {
            pla = ucp::pla::read_pla_file(opts.positional()[0]);
        } else {
            std::cerr << "usage: minimize_pla <file.pla> | --instance=<name>\n"
                      << "       [--solver=scg|exact|greedy] [--out=<file>]\n"
                      << "       [--compare-espresso] [--json]\n"
                      << "       [--deadline-ms=<n>] [--zdd-node-budget=<n>]\n"
                      << "       [--zdd-cache-entries=<n>] "
                         "[--zdd-gc-threshold=<n>]\n"
                      << "       [--trace=<file>] "
                         "[--trace-level=phase|iter] "
                         "[--trace-format=jsonl|chrome]\n"
                      << "named instances: bench1, ex5, exam, max1024, prom2, "
                         "t1, test4, ex1010, test2, ...\n";
            return 2;
        }
        const bool json = opts.get_bool("json", false);

        const auto& s = pla.space();
        if (!json)
            std::cout << "Function: " << pla.name << " — " << s.num_inputs
                      << " inputs, " << s.num_outputs << " outputs, "
                      << pla.on.size() << " on-cubes, " << pla.dc.size()
                      << " dc-cubes\n";

        ucp::solver::TwoLevelOptions tl;
        // ZDD/BDD engine knobs (defaults documented in README).
        tl.table.dd.cache_entries = static_cast<std::size_t>(opts.get_int(
            "zdd-cache-entries", static_cast<long>(tl.table.dd.cache_entries)));
        tl.table.dd.gc_threshold = static_cast<std::size_t>(opts.get_int(
            "zdd-gc-threshold", static_cast<long>(tl.table.dd.gc_threshold)));
        // Resource governor: deadline, DD node budget, SIGINT cancellation.
        tl.budget.deadline_seconds =
            static_cast<double>(opts.get_int("deadline-ms", 0)) / 1000.0;
        tl.budget.zdd_node_budget =
            static_cast<std::size_t>(opts.get_int("zdd-node-budget", 0));
        tl.cancel = &g_cancel;
        std::signal(SIGINT, on_sigint);
        // Tracing (docs/OBSERVABILITY.md): arm before the solve, export after.
        const std::string trace_path = opts.get("trace", "");
        const std::string trace_format = opts.get("trace-format", "jsonl");
        ucp::trace::Level trace_level = ucp::trace::Level::kPhase;
        if (!ucp::trace::parse_level(opts.get("trace-level", "phase"),
                                     trace_level)) {
            std::cerr << "unknown --trace-level (want phase|iter)\n";
            return 2;
        }
        if (trace_format != "jsonl" && trace_format != "chrome") {
            std::cerr << "unknown --trace-format (want jsonl|chrome)\n";
            return 2;
        }
        if (!trace_path.empty()) {
            if (!ucp::trace::compiled_in()) {
                std::cerr << "warning: built with -DUCP_TRACE=OFF; --trace "
                             "will produce an empty trace\n";
            }
            ucp::trace::start(trace_level);
        }
        const std::string solver = opts.get("solver", "scg");
        if (solver == "exact")
            tl.cover_solver = ucp::solver::CoverSolver::kExact;
        else if (solver == "greedy")
            tl.cover_solver = ucp::solver::CoverSolver::kGreedy;
        else if (solver != "scg") {
            std::cerr << "unknown solver: " << solver << '\n';
            return 2;
        }

        const auto r = ucp::solver::minimize_two_level(pla, tl);
        if (!trace_path.empty()) {
            ucp::trace::stop();
            std::ofstream tf(trace_path);
            if (!tf) {
                std::cerr << "error: cannot write trace file " << trace_path
                          << '\n';
                return 1;
            }
            if (trace_format == "chrome")
                ucp::trace::write_chrome(tf);
            else
                ucp::trace::write_jsonl(tf);
            if (!json)
                std::cout << "trace written to " << trace_path << " ("
                          << trace_format << ")\n";
        }
        if (json) {
            print_json(std::cout, r);
        } else {
            std::cout << "\nZDD_SCG pipeline (" << solver << "):\n"
                      << "  primes               : " << r.num_primes << '\n'
                      << "  covering rows        : " << r.num_rows
                      << " (signature classes of " << r.onset_minterms
                      << " on-set minterms)\n"
                      << "  products             : " << r.cost
                      << (r.proved_optimal ? "  (proved optimal, LB = "
                                           : "  (LB = ")
                      << r.lower_bound << ")\n"
                      << "  literals             : " << r.literals << '\n'
                      << "  cyclic core time     : " << r.cyclic_core_seconds
                      << " s\n"
                      << "  total time           : " << r.total_seconds
                      << " s\n"
                      << "  status               : " << ucp::to_string(r.status)
                      << '\n'
                      << "  equivalence verified : "
                      << (r.verified ? "yes" : "NO — BUG") << '\n';
            if (r.status != ucp::Status::kOk)
                std::cout << "  (budget trip: best-so-far anytime result)\n";
        }

        if (opts.get_bool("compare-espresso", false)) {
            const auto en = ucp::esp::espresso(pla);
            ucp::esp::EspressoOptions strong;
            strong.strong = true;
            const auto es = ucp::esp::espresso(pla, strong);
            std::cout << "\nEspresso baseline: " << en.cover.size()
                      << " products (normal), " << es.cover.size()
                      << " products (strong)\n";
        }

        if (opts.has("out")) {
            ucp::pla::Pla out;
            out.name = pla.name + ".min";
            out.on = r.cover;
            out.dc = ucp::pla::Cover(s);
            out.off = ucp::pla::Cover(s);
            std::ofstream f(opts.get("out"));
            ucp::pla::write_pla(f, out);
            if (!json)
                std::cout << "\nminimised PLA written to " << opts.get("out")
                          << '\n';
        }
        // A budget trip still exits 0 when the anytime cover verifies — the
        // caller distinguishes complete/truncated runs via the status field.
        return r.verified ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
