// Exact branch-and-bound unate-covering solver — our stand-in for Scherzo
// [10] / Aura [14] in the Table 3–4 comparisons, and the optimality oracle in
// the tests.
//
// Structure (mincov-style):
//   * at every node, reduce to the cyclic core (essentials + dominance);
//   * prune with a lower bound: MIS (the classical choice), dual ascent, or
//     the Lagrangian bound (paper §3.4's stronger options);
//   * apply the limit-bound theorem to discard columns (Theorem 2);
//   * branch on the columns of a shortest row (complete n-ary branching).
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/sparse_matrix.hpp"
#include "util/budget.hpp"

namespace ucp::solver {

enum class BnbBound {
    kMis,            ///< maximal-independent-set bound (classical VLSI choice)
    kDualAscent,     ///< heuristic dual solution (Liao–Devadas fast mode [15])
    kLagrangian,     ///< subgradient-tightened Lagrangian bound (paper §3.2)
    kLp,             ///< exact linear relaxation ⌈z*_P⌉ (Liao–Devadas [15])
    kIncrementalMis, ///< MIS strengthened by solving a grown row-subset
                     ///< exactly (Goldberg et al. / Aura [14])
};

struct BnbOptions {
    BnbBound bound = BnbBound::kDualAscent;
    bool use_limit_bound = true;
    std::size_t max_nodes = 50'000'000;
    double time_limit_seconds = 0.0;  ///< 0 = unlimited
    int lagrangian_iterations = 60;   ///< subgradient budget per node (kLagrangian)
    /// kIncrementalMis: how many rows beyond the MIS the sub-problem may take.
    int incremental_mis_extra_rows = 6;
    /// kLp: cores larger than this (rows × cols) fall back to dual ascent.
    std::size_t lp_cell_limit = 40'000;
    /// Optional resource governor, charged one iteration per expanded node.
    /// A trip truncates the search exactly like max_nodes: the incumbent and
    /// root bound stay valid, `optimal` is false, and BnbResult::status
    /// reports the trip. Not owned; nullptr = ungoverned. With num_threads >
    /// 1 every subtask runs under a fork() of this governor (shared cancel
    /// token and absolute deadline, per-subtask iteration counters), so all
    /// workers observe deadline/cancel cooperatively.
    Budget* governor = nullptr;
    // ---- decomposition-parallel search (DESIGN.md §11) ----------------------
    /// Detect independent blocks of the cyclic core — at the root and again
    /// at every expanded node — and solve them as separate subproblems with
    /// per-block bounds (the partitioning reduction of paper §2, applied
    /// dynamically).
    bool decompose = true;
    /// Worker threads for the top-level block search. 1 = fully sequential
    /// (the deterministic reference execution), 0 = ThreadPool::
    /// default_threads() (honours UCP_THREADS). The optimal cost is
    /// bit-identical across thread counts; only the tie choice among equal-
    /// cost covers, node counts and trip points may differ.
    int num_threads = 1;
    /// Small-core cutoff: cores with fewer live rows skip the per-node
    /// component scan, and blocks smaller than this are never root-split
    /// into branch subtasks — tiny cores are cheaper to finish than to
    /// decompose.
    cov::Index parallel_min_rows = 8;
    /// Optional warm incumbent (original column indices). Checked for
    /// feasibility, made irredundant, and adopted when it beats the greedy
    /// baseline, so the search starts with a tighter pruning threshold — the
    /// cross-seeding hook the portfolio uses to hand an RWLS upper bound to
    /// the exact solver. Exactness is unaffected (any feasible cover is a
    /// valid incumbent); ignored when empty or infeasible.
    std::vector<cov::Index> warm_solution{};
};

/// The Aura-flavoured bound [14]: the optimum of the sub-problem induced by
/// the MIS rows plus up to `extra_rows` more (solved exactly with a small
/// node budget) is a valid lower bound for the full problem and dominates
/// the plain MIS bound. Exposed for the bound-comparison experiments.
cov::Cost incremental_mis_bound(const cov::CoverMatrix& m, int extra_rows = 6);

struct BnbResult {
    std::vector<cov::Index> solution;
    cov::Cost cost = 0;
    cov::Cost lower_bound = 0;  ///< equals cost when optimal
    bool optimal = false;
    std::size_t nodes = 0;
    double seconds = 0.0;
    /// Independent blocks of the root cyclic core (1 = no decomposition;
    /// 0 = solved by the root reductions alone).
    std::size_t blocks = 0;
    /// kOk, or the governor trip that truncated the search.
    Status status = Status::kOk;
};

BnbResult solve_exact(const cov::CoverMatrix& m, const BnbOptions& opt = {});

}  // namespace ucp::solver
