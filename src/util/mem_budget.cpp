#include "util/mem_budget.hpp"

#include <cstdlib>

#include "util/stats.hpp"

namespace ucp {

bool MemoryBudget::deny(std::size_t) noexcept {
    static stats::Counter& c_denied = stats::counter("mem.denied");
    denied_.fetch_add(1, std::memory_order_relaxed);
    c_denied.add();
    return false;
}

MemoryBudget* MemoryBudget::process_default() noexcept {
    static MemoryBudget* const instance = []() -> MemoryBudget* {
        std::size_t cap = 0;
        if (const char* env = std::getenv("UCP_MEM_BUDGET")) {
            char* end = nullptr;
            const unsigned long long mb = std::strtoull(env, &end, 10);
            if (end != env && mb > 0)
                cap = static_cast<std::size_t>(mb) << 20;  // MB → bytes
        }
        const fault::Spec spec = fault::spec_from_env();
        if (cap == 0 && !spec.memory_kind()) return nullptr;
        static MemoryBudget budget(cap, nullptr, spec);
        return &budget;
    }();
    return instance;
}

}  // namespace ucp
