# Empty dependencies file for bench_fig1_bounds.
# This may be replaced when dependencies are built.
