file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_challenging.dir/bench_table2_challenging.cpp.o"
  "CMakeFiles/bench_table2_challenging.dir/bench_table2_challenging.cpp.o.d"
  "bench_table2_challenging"
  "bench_table2_challenging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_challenging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
