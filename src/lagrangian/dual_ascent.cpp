#include "lagrangian/dual_ascent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "kernels/sparse_ops.hpp"
#include "matrix/sub_matrix.hpp"
#include "util/trace.hpp"

namespace ucp::lagr {

using cov::CoverMatrix;
using cov::Index;
using cov::SubMatrix;

template <class Matrix>
DualAscentResult dual_ascent(const Matrix& a, LagrangianWorkspace& ws,
                             const std::vector<double>& warm_start,
                             const std::vector<double>& cost_override,
                             Budget* governor) {
    TRACE_SPAN("dual_ascent");
    const Index R = a.num_rows();
    const Index C = a.num_cols();

    fit(ws.da_cost, C);
    std::vector<double>& cost = ws.da_cost;
    if (cost_override.empty()) {
        for (Index j = 0; j < C; ++j)
            if (a.col_alive(j)) cost[j] = static_cast<double>(a.cost(j));
    } else {
        UCP_REQUIRE(cost_override.size() == C, "cost override size mismatch");
        std::copy(cost_override.begin(), cost_override.end(), cost.begin());
    }

    // c̄_i = min over alive columns covering row i (∞-cost columns ignored).
    fit(ws.da_cbar, R);
    std::vector<double>& cbar = ws.da_cbar;
    for (Index i = 0; i < R; ++i) {
        if (!a.row_alive(i)) continue;
        double cb = std::numeric_limits<double>::infinity();
        for (const Index j : a.row(i))
            if (a.col_alive(j)) cb = std::min(cb, cost[j]);
        // A row coverable only by +∞-cost columns makes the dual unbounded
        // (the primal with those columns forbidden is infeasible); a huge
        // finite value propagates the right conclusion to the penalty tests.
        cbar[i] = std::isfinite(cb) ? cb : 1e18;
    }

    // Dead rows keep m_i = 0.0 exactly: the column-load sums below run over
    // the unfiltered base adjacency, and adding an exact +0.0 leaves every
    // partial sum bit-identical to the filtered (compacted) accumulation.
    fit(ws.da_m, R);
    std::vector<double>& m = ws.da_m;
    if (warm_start.empty()) {
        for (Index i = 0; i < R; ++i) m[i] = a.row_alive(i) ? cbar[i] : 0.0;
    } else {
        UCP_REQUIRE(warm_start.size() == R, "warm start size mismatch");
        for (Index i = 0; i < R; ++i)
            m[i] = a.row_alive(i) ? std::clamp(warm_start[i], 0.0, cbar[i]) : 0.0;
    }

    // Column loads: Σ_i a_ij m_i.
    fit(ws.da_load, C);
    std::vector<double>& load = ws.da_load;
    kern::fill(load.data(), 0.0, C);
    for (Index i = 0; i < R; ++i) {
        if (!a.row_alive(i)) continue;
        const auto span = a.row(i);
        kern::span_add(load.data(), span.data(), span.size(), m[i]);
    }

    // ---- phase 1: decrease until A'm ≤ c, most-covered rows first -----------
    fit(ws.da_order, static_cast<std::size_t>(a.num_live_rows()));
    std::vector<Index>& order = ws.da_order;
    {
        std::size_t k = 0;
        for (Index i = 0; i < R; ++i)
            if (a.row_alive(i)) order[k++] = i;
    }
    std::stable_sort(order.begin(), order.end(), [&](Index x, Index y) {
        return a.live_row_size(x) > a.live_row_size(y);
    });
    for (const Index i : order) {
        if (m[i] <= 0.0) continue;
        double worst = 0.0;
        for (const Index j : a.row(i)) {
            if (!a.col_alive(j)) continue;
            if (!std::isfinite(cost[j])) continue;  // relaxed constraint
            worst = std::max(worst, load[j] - cost[j]);
        }
        if (worst > 0.0) {
            const double dec = std::min(m[i], worst);
            m[i] -= dec;
            const auto span = a.row(i);
            kern::span_sub(load.data(), span.data(), span.size(), dec);
        }
    }
    // Phase 1 guarantees: every column containing a still-positive variable is
    // satisfied; a final sweep handles rounding slack.
    // ---- phase 2: increase in increasing occurrence order ---------------------
    // On a tripped governor the re-increase is skipped: the repaired m is
    // already dual feasible, so stopping here keeps the bound valid.
    if (governor == nullptr || governor->check() == Status::kOk) {
        std::stable_sort(order.begin(), order.end(), [&](Index x, Index y) {
            return a.live_row_size(x) < a.live_row_size(y);
        });
        for (const Index i : order) {
            double slack = cbar[i] - m[i];  // respect the m ≤ c̄ box
            for (const Index j : a.row(i)) {
                if (!a.col_alive(j)) continue;
                if (!std::isfinite(cost[j])) continue;
                slack = std::min(slack, cost[j] - load[j]);
            }
            if (slack > 1e-12) {
                m[i] += slack;
                const auto span = a.row(i);
                kern::span_add(load.data(), span.data(), span.size(), slack);
            }
        }
    }

    DualAscentResult out;
    out.m.assign(m.begin(), m.end());
    double value = 0.0;
    for (Index i = 0; i < R; ++i)
        if (a.row_alive(i)) value += m[i];
    out.value = value;
    TRACE_ITER("dual_ascent", 0, out.value, 0.0, 0.0,
               static_cast<std::uint64_t>(a.num_live_rows()),
               static_cast<std::uint64_t>(a.num_live_cols()),
               trace::dd_cache_hit_rate());
    return out;
}

template DualAscentResult dual_ascent<CoverMatrix>(
    const CoverMatrix&, LagrangianWorkspace&, const std::vector<double>&,
    const std::vector<double>&, Budget*);
template DualAscentResult dual_ascent<SubMatrix>(
    const SubMatrix&, LagrangianWorkspace&, const std::vector<double>&,
    const std::vector<double>&, Budget*);

DualAscentResult dual_ascent(const CoverMatrix& a,
                             const std::vector<double>& warm_start,
                             const std::vector<double>& cost_override) {
    LagrangianWorkspace ws;
    return dual_ascent(a, ws, warm_start, cost_override);
}

MisResult mis_lower_bound(const CoverMatrix& a) {
    const Index R = a.num_rows();

    // Cheapest covering column per row; rows with expensive cheap-cover and
    // low connectivity make good independent-set members.
    std::vector<cov::Cost> cheapest(R);
    for (Index i = 0; i < R; ++i) {
        cov::Cost c = std::numeric_limits<cov::Cost>::max();
        for (const Index j : a.row(i)) c = std::min(c, a.cost(j));
        cheapest[i] = c;
    }
    // Row degree in the intersection graph ≈ Σ over its columns of column size.
    std::vector<std::size_t> weight(R, 0);
    for (Index i = 0; i < R; ++i)
        for (const Index j : a.row(i)) weight[i] += a.col(j).size();

    std::vector<Index> order(R);
    std::iota(order.begin(), order.end(), Index{0});
    std::stable_sort(order.begin(), order.end(), [&](Index x, Index y) {
        // Prefer high bound contribution, then low connectivity.
        const double sx = static_cast<double>(cheapest[x]) / static_cast<double>(weight[x]);
        const double sy = static_cast<double>(cheapest[y]) / static_cast<double>(weight[y]);
        return sx > sy;
    });

    MisResult out;
    std::vector<bool> col_blocked(a.num_cols(), false);
    for (const Index i : order) {
        bool independent = true;
        for (const Index j : a.row(i))
            if (col_blocked[j]) {
                independent = false;
                break;
            }
        if (!independent) continue;
        out.rows.push_back(i);
        out.bound += cheapest[i];
        for (const Index j : a.row(i)) col_blocked[j] = true;
    }
    return out;
}

}  // namespace ucp::lagr
