// The paper's algorithm: SCG (subgradient-driven constructive greedy), the
// explicit phase of ZDD_SCG (Fig. 2).
//
// Outer loop: NumIter runs. Each run starts from the saved exact cyclic core
// and repeatedly
//   1. runs SubgradientAscent → (λ, µ, LB, incumbent);
//   2. applies the Lagrangian and dual penalty tests (§3.6) to fix/remove
//      columns;
//   3. adds the "promising" columns (c̃_j ≤ ĉ and µ_j ≥ µ̂, §3.7);
//   4. rates the rest with σ = c̃ − α·µ and fixes one more column — the best
//      one in run 1, a random one of the best `BestCol` in later runs;
//   5. re-reduces the matrix to a fixed point;
// until the matrix empties or the local bound proves no improvement is
// possible. The incumbent is made irredundant at the end of each run.
// BestCol grows from run to run to widen the explored region (§4).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "lagrangian/subgradient.hpp"
#include "matrix/sparse_matrix.hpp"

namespace ucp::solver {

struct ScgOptions {
    int num_iter = 4;          ///< NumIter: number of constructive runs
    int best_col_start = 1;    ///< BestCol for run 2 (run 1 is deterministic)
    int best_col_growth = 2;   ///< BestCol increment per run
    double alpha = 2.0;        ///< σ = c̃ − α·µ (paper: α = 2)
    double c_hat = 0.001;      ///< promising-column threshold on c̃
    double mu_hat = 0.999;     ///< promising-column threshold on µ
    bool use_lagrangian_penalties = true;
    bool use_dual_penalties = true;
    std::size_t dual_pen_max_cols = 100;  ///< paper: DualPen = 100
    /// The fixing loop works on an in-place live view of the core and only
    /// materialises a compacted matrix when the live fraction (min of live
    /// rows/cols over base dims) drops below this threshold. 1.0 = compact
    /// after every fixing step (the classical behaviour), 0.0 = never.
    /// Results are bit-identical for any value (see DESIGN.md §7). Keep it
    /// high: the subgradient iterates the base spans, so dead slots cost
    /// wall-clock — 0.9 caps that at ~10% while still skipping the rebuild
    /// after steps that removed almost nothing.
    double compact_live_fraction = 0.9;
    std::uint64_t seed = 0x5eed;
    double time_limit_seconds = 0.0;  ///< 0 = unlimited
    /// Independent stochastic multi-starts (embarrassingly parallel). Start 0
    /// uses `seed` verbatim — so num_starts = 1 reproduces the classic
    /// single-descent solver — and start s > 0 uses seed ⊕ splitmix(s), an
    /// independent SplitMix64-derived stream. Results reduce
    /// deterministically: best cost, ties broken by lowest start index, so
    /// the answer is bit-identical for every num_threads value.
    int num_starts = 1;
    /// Worker threads for the multi-start fan-out. 0 = auto
    /// (ThreadPool::default_threads(): UCP_THREADS env or hardware);
    /// 1 = serial. Has no effect when num_starts ≤ 1.
    int num_threads = 1;
    lagr::SubgradientOptions subgradient{};
    /// Optional resource governor (deadline / cancellation / iteration cap).
    /// Polled between fixing steps and charged per subgradient iteration; a
    /// trip ends the solve with the best-so-far incumbent and bound, reported
    /// through ScgResult::status. Multi-starts each run on a fork of this
    /// budget (shared deadline + cancel token, private fault/iteration
    /// counters) so fault injection trips deterministically regardless of
    /// num_threads. Not owned; nullptr = ungoverned.
    Budget* governor = nullptr;
    /// Optional warm incumbent (original column indices, feasible for the
    /// full matrix). Made irredundant and adopted when it beats the root
    /// incumbent, which tightens the penalty-test target best_cost −
    /// chosen_cost from the first fixing step — the cross-seeding hook the
    /// portfolio uses to feed an RWLS upper bound back into the Lagrangian
    /// fixing rule. Ignored when empty or infeasible.
    std::vector<cov::Index> warm_solution{};
    /// Optional progress log (one line per subgradient phase / run).
    /// Ignored by the parallel starts (s > 0) to keep output deterministic.
    std::ostream* log = nullptr;
};

struct ScgResult {
    std::vector<cov::Index> solution;  ///< original column indices, irredundant
    cov::Cost cost = 0;
    cov::Cost lower_bound = 0;       ///< best global Lagrangian bound, ⌈·⌉
    double lower_bound_fractional = 0.0;
    bool proved_optimal = false;     ///< cost == lower_bound
    int runs_executed = 0;
    int run_of_best = 0;             ///< the run (1-based) that found `solution`
    int starts_executed = 0;         ///< multi-starts actually run (≥ 1)
    int start_of_best = 0;           ///< the start (0-based) that found `solution`
    std::size_t subgradient_calls = 0;
    std::size_t columns_fixed_by_penalties = 0;
    std::size_t columns_removed_by_penalties = 0;
    double seconds = 0.0;
    /// kOk, or the governor trip that ended the solve early. The solution is
    /// feasible and lower_bound valid either way (anytime contract).
    Status status = Status::kOk;
};

/// Solves the unate covering problem heuristically with the SCG scheme.
ScgResult solve_scg(const cov::CoverMatrix& m, const ScgOptions& opt = {});

}  // namespace ucp::solver
