// In-place live view over a CoverMatrix: alive-row/col masks plus live-degree
// counters. The SCG fixing loop and the reduction engine mutate this view
// (kill rows, remove/fix columns) instead of materialising a compacted
// CoverMatrix after every step; compaction happens only when the live
// fraction drops below a threshold (ScgOptions::compact_live_fraction).
//
// Index space: the view keeps the BASE indices. Algorithms iterate the base
// ranges and skip dead slots via row_alive()/col_alive(); because the
// base→compact renumbering is monotone, iterating alive base indices in
// ascending order visits exactly the same elements in exactly the same order
// as iterating a compacted matrix — which is what keeps the Lagrangian
// engine's floating-point results bit-identical between the two
// representations (see DESIGN.md §7).
#pragma once

#include <vector>

#include "matrix/sparse_matrix.hpp"

namespace ucp::cov {

class SubMatrix {
public:
    SubMatrix() = default;
    explicit SubMatrix(const CoverMatrix& base) { reset(base); }

    /// Re-targets the view at `base` with everything alive.
    void reset(const CoverMatrix& base);
    /// Re-points the view at a moved/copied base of identical shape (the
    /// alive masks and counters are kept). Used when the owning struct is
    /// copied and the base matrix lives inside it.
    void rebind(const CoverMatrix* base) { base_ = base; }

    [[nodiscard]] const CoverMatrix& base() const { return *base_; }

    // ---- CoverMatrix-compatible interface (BASE dims / BASE spans) -------------
    [[nodiscard]] Index num_rows() const { return base_->num_rows(); }
    [[nodiscard]] Index num_cols() const { return base_->num_cols(); }
    [[nodiscard]] IndexSpan row(Index i) const { return base_->row(i); }
    [[nodiscard]] IndexSpan col(Index j) const { return base_->col(j); }
    [[nodiscard]] Cost cost(Index j) const { return base_->cost(j); }

    [[nodiscard]] bool row_alive(Index i) const { return row_alive_[i] != 0; }
    [[nodiscard]] bool col_alive(Index j) const { return col_alive_[j] != 0; }
    /// Byte masks for the kern:: sparse-ops layer (0 = dead, 1 = alive).
    [[nodiscard]] const char* row_alive_data() const noexcept {
        return row_alive_.data();
    }
    [[nodiscard]] const char* col_alive_data() const noexcept {
        return col_alive_.data();
    }
    [[nodiscard]] Index num_live_rows() const noexcept { return live_rows_; }
    [[nodiscard]] Index num_live_cols() const noexcept { return live_cols_; }
    /// Number of alive columns in row i / alive rows in column j — the sizes
    /// a compacted matrix would report. Maintained incrementally, O(1).
    [[nodiscard]] Index live_row_size(Index i) const { return row_len_[i]; }
    [[nodiscard]] Index live_col_size(Index j) const { return col_len_[j]; }
    /// Dense live-degree arrays for the kern:: integer sweep kernels.
    [[nodiscard]] const Index* live_row_size_data() const noexcept {
        return row_len_.data();
    }
    [[nodiscard]] const Index* live_col_size_data() const noexcept {
        return col_len_.data();
    }

    /// min(live rows / rows, live cols / cols); 1.0 for an empty base.
    [[nodiscard]] double live_fraction() const noexcept;

    // ---- mutations (engine primitives) -----------------------------------------
    /// Kills row i. Calls `on_col(j)` for every alive column j that lost the
    /// row (its live_col_size already decremented).
    template <class OnCol>
    void kill_row(Index i, OnCol on_col) {
        UCP_ASSERT(row_alive_[i] != 0);
        row_alive_[i] = 0;
        --live_rows_;
        for (const Index j : base_->row(i)) {
            if (col_alive_[j] == 0) continue;
            --col_len_[j];
            on_col(j);
        }
    }

    /// Removes column j without touching rows. Calls `on_row(i)` for every
    /// alive row i that lost the column (its live_row_size already
    /// decremented — a result of 0 means the restricted problem is
    /// infeasible and the caller must abandon the path).
    template <class OnRow>
    void remove_col(Index j, OnRow on_row) {
        UCP_ASSERT(col_alive_[j] != 0);
        col_alive_[j] = 0;
        --live_cols_;
        for (const Index i : base_->col(j)) {
            if (row_alive_[i] == 0) continue;
            --row_len_[i];
            on_row(i);
        }
    }

    /// Takes column j into the solution: the column dies and every row it
    /// covers dies with it. `on_row_killed(i)` fires per covered row,
    /// `on_col_touched(i, j2)` per (killed row, surviving column) pair.
    template <class OnRowKilled, class OnColTouched>
    void fix_col(Index j, OnRowKilled on_row_killed, OnColTouched on_col_touched) {
        UCP_ASSERT(col_alive_[j] != 0);
        col_alive_[j] = 0;
        --live_cols_;
        for (const Index i : base_->col(j)) {
            if (row_alive_[i] == 0) continue;
            on_row_killed(i);
            kill_row(i, [&](Index j2) { on_col_touched(i, j2); });
        }
    }

    /// Drops a column no alive row references (live_col_size == 0). Used by
    /// the core-extraction sweep; asserts the precondition.
    void drop_dead_col(Index j) {
        UCP_ASSERT(col_alive_[j] != 0 && col_len_[j] == 0);
        col_alive_[j] = 0;
        --live_cols_;
    }

    // ---- solution helpers (compact-matrix semantics on base indices) -----------
    [[nodiscard]] bool is_feasible(const std::vector<Index>& solution) const;
    [[nodiscard]] Cost solution_cost(const std::vector<Index>& solution) const;
    [[nodiscard]] std::vector<Index> make_irredundant(
        std::vector<Index> solution) const;

    /// Materialises the live sub-problem as a compact CoverMatrix; fills the
    /// dense remaps (compact index → base index). Produces exactly the matrix
    /// the classical strip/reduce pipeline would have built.
    [[nodiscard]] CoverMatrix compact(std::vector<Index>& col_map,
                                      std::vector<Index>& row_map) const;

    /// Debug check: live counters consistent with the masks.
    void validate() const;

    /// Reserved footprint in bytes of the view masks/counters (memory-budget
    /// accounting; the base matrix is charged by its own holder).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return (row_alive_.capacity() + col_alive_.capacity()) * sizeof(char) +
               (row_len_.capacity() + col_len_.capacity()) * sizeof(Index);
    }

private:
    const CoverMatrix* base_ = nullptr;
    std::vector<char> row_alive_, col_alive_;
    std::vector<Index> row_len_, col_len_;
    Index live_rows_ = 0, live_cols_ = 0;
};

}  // namespace ucp::cov
