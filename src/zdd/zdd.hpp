// Zero-suppressed Binary Decision Diagram (ZDD) package.
//
// This is the substrate that replaces the CUDD library [21] used by the paper.
// A ZDD canonically represents a family of sets over variables 0..num_vars-1
// (Minato, DAC'93 [18]). The covering algorithms use ZDDs for:
//   * sets of cubes (prime implicants), with two ZDD variables per input
//     variable (positive / negative literal) — see zdd_cubes.hpp;
//   * sets of minterms (one ZDD variable per input variable, a minterm being
//     the set of variables assigned 1) — used by the implicit covering phase.
//
// Design notes
//   * Nodes live in a flat arena (std::vector): the hot (var, lo, hi) fields
//     are packed contiguously per node, while the cold per-node bookkeeping
//     (external refcounts, free/mark flags) lives in separate arrays so
//     recursions touch only the hot array. NodeId 0 is the empty family
//     (terminal 0) and NodeId 1 is the unit family {∅} (terminal 1).
//   * Canonicity: hi == 0 is never materialised (zero-suppression rule) and a
//     unique table guarantees structural sharing.
//   * Chain nodes (DdOptions::chain_nodes, default on): a node carries a level
//     interval ⟨t:b⟩ packed into the 32-bit var field (top level in the high
//     24 bits, span b−t in the low 8), representing
//         ⟦⟨t:b, lo, hi⟩⟧ = { {t,…,b−1} ∪ S : S ∈ ⟦lo⟧ ∪ {b}⊔⟦hi⟧ },
//     i.e. a maximal run of "must-contain" levels compressed into one arena
//     record (Bryant's chain reduction, zero-chain variant — DESIGN.md §12).
//     A plain node is the t == b special case, so the stride stays 12 bytes
//     and the unique-table hash/equality work on the packed field unchanged.
//     make() absorbs (v, ∅, hi) into hi's chain automatically, so chain
//     formation is invisible to callers; runs longer than 255 levels split
//     into segments.
//   * A lossy, growable 4-way set-associative computed cache (dd_common.hpp)
//     memoises operations; fused compound operators (diff_intersect,
//     non_sub_set/non_sup_set, the cofactor pair) get their own memo slots.
//   * External references are RAII handles (class Zdd). Garbage collection is
//     mark-and-sweep from the externally referenced roots; it runs only
//     between top-level operations, never during a recursion.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "zdd/dd_common.hpp"

namespace ucp::zdd {

using NodeId = std::uint32_t;
using Var = std::uint32_t;

inline constexpr NodeId kEmpty = 0;  ///< terminal 0: the empty family {}
inline constexpr NodeId kBase = 1;   ///< terminal 1: the unit family {∅}
inline constexpr Var kTermVar = 0xFFFFFFFFu;

class ZddManager;

/// RAII handle to a ZDD root. Keeps the referenced subgraph alive across GC.
/// Cheap to copy (bumps a per-node external refcount).
class Zdd {
public:
    Zdd() noexcept : mgr_(nullptr), id_(kEmpty) {}
    Zdd(ZddManager* mgr, NodeId id);
    Zdd(const Zdd& other);
    Zdd(Zdd&& other) noexcept;
    Zdd& operator=(const Zdd& other);
    Zdd& operator=(Zdd&& other) noexcept;
    ~Zdd();

    [[nodiscard]] NodeId id() const noexcept { return id_; }
    [[nodiscard]] ZddManager* manager() const noexcept { return mgr_; }
    [[nodiscard]] bool is_empty() const noexcept { return id_ == kEmpty; }
    [[nodiscard]] bool is_base() const noexcept { return id_ == kBase; }

    // Canonical representation: structural equality is id equality.
    friend bool operator==(const Zdd& a, const Zdd& b) noexcept {
        return a.id_ == b.id_ && a.mgr_ == b.mgr_;
    }
    friend bool operator!=(const Zdd& a, const Zdd& b) noexcept { return !(a == b); }

    // Set-algebra convenience operators (delegate to the manager).
    Zdd operator|(const Zdd& rhs) const;  ///< union
    Zdd operator&(const Zdd& rhs) const;  ///< intersection
    Zdd operator-(const Zdd& rhs) const;  ///< difference
    Zdd operator*(const Zdd& rhs) const;  ///< cube-set (unate) product

    /// Number of sets in the family (saturating at ~1e18 as uint64, exact as double
    /// up to 2^53).
    [[nodiscard]] double count() const;
    /// Number of DAG nodes reachable from this root (excluding terminals).
    [[nodiscard]] std::size_t node_count() const;

private:
    friend class ZddManager;
    void release() noexcept;

    ZddManager* mgr_;
    NodeId id_;
};

/// The node arena, unique table, computed cache and operation implementations.
class ZddManager {
public:
    explicit ZddManager(Var num_vars, const DdOptions& options = {});
    /// Flushes the cache, GC and chain counters into the global stats
    /// registry ("zdd.cache_hits" / "zdd.cache_misses" / "zdd.cache_resizes"
    /// / "zdd.gc_runs" / "zdd.nodes_swept" / "zdd.chain_nodes_made" /
    /// "zdd.chain_hits").
    ~ZddManager();

    ZddManager(const ZddManager&) = delete;
    ZddManager& operator=(const ZddManager&) = delete;

    [[nodiscard]] Var num_vars() const noexcept { return num_vars_; }

    // ---- constructors -------------------------------------------------------
    Zdd empty() { return Zdd(this, kEmpty); }
    Zdd base() { return Zdd(this, kBase); }
    /// The family {{v}} containing the single set {v}.
    Zdd single(Var v);
    /// The family containing exactly the given set of variables (one set).
    Zdd set_of(const std::vector<Var>& vars);
    /// Family of all 2^k subsets of the given variables.
    Zdd power_set(const std::vector<Var>& vars);

    // ---- core set operations ------------------------------------------------
    Zdd union_(const Zdd& a, const Zdd& b);
    Zdd intersect(const Zdd& a, const Zdd& b);
    Zdd diff(const Zdd& a, const Zdd& b);
    /// Subsets of `a` not containing v (a.k.a. offset / subset0).
    Zdd subset0(const Zdd& a, Var v);
    /// Subsets of `a` containing v, with v removed (a.k.a. onset / subset1).
    Zdd subset1(const Zdd& a, Var v);
    /// Toggle membership of v in every set of `a`.
    Zdd change(const Zdd& a, Var v);

    // ---- cube-set operations (Minato / Coudert operators) -------------------
    /// All pairwise unions of a set from `a` and a set from `b`.
    Zdd product(const Zdd& a, const Zdd& b);
    /// { f ∈ a : ∃ g ∈ b, f ⊇ g }.
    Zdd sup_set(const Zdd& a, const Zdd& b);
    /// { f ∈ a : ∃ g ∈ b, f ⊆ g }.
    Zdd sub_set(const Zdd& a, const Zdd& b);
    /// Sets of `a` that are maximal under inclusion within `a` (one-pass
    /// Minato recursion over the fused non_sub_set operator).
    Zdd maximal(const Zdd& a);
    /// Sets of `a` that are minimal under inclusion within `a` (one-pass,
    /// via non_sup_set).
    Zdd minimal(const Zdd& a);

    // ---- fused compound operators -------------------------------------------
    // Each fuses a two-operator pattern of the implicit covering phase into a
    // single individually-memoised recursion. By canonicity the results are
    // structurally identical (same NodeId) to the composed forms.
    /// a \ (a ∩ b). Algebraically equal to diff(a, b), so the fusion is the
    /// identity a \ (a∩b) ≡ a \ b computed in ONE pass sharing the diff memo
    /// (the composed form walks both operands twice and allocates the
    /// intermediate intersection).
    Zdd diff_intersect(const Zdd& a, const Zdd& b);
    /// { f ∈ a : ∀g ∈ b, f ⊄ g } — a − sub_set(a, b) in one pass.
    Zdd non_sub_set(const Zdd& a, const Zdd& b);
    /// { f ∈ a : ∀g ∈ b, f ⊉ g } — a − sup_set(a, b) in one pass.
    Zdd non_sup_set(const Zdd& a, const Zdd& b);
    /// (subset0(a, v), subset1(a, v)) in one walk with a pair-memo: each node
    /// of `a` is visited once instead of twice.
    std::pair<Zdd, Zdd> cofactors(const Zdd& a, Var v);

    // ---- queries -------------------------------------------------------------
    /// True iff ∅ ∈ a (O(depth) walk down the lo-spine; replaces the
    /// intersect-with-base idiom).
    [[nodiscard]] bool has_empty_set(const Zdd& a) const noexcept {
        return contains_empty(a.id());
    }
    /// True iff the single set represented by `single_set` (a one-member
    /// family, e.g. from set_of) is a member of `family`. O(set size) walk —
    /// replaces the intersect-then-compare idiom.
    [[nodiscard]] bool contains_set(const Zdd& family,
                                    const Zdd& single_set) const noexcept;
    double count(const Zdd& a);
    /// Exact cardinality as a decimal string (families beyond 2^53 overflow
    /// the double count; this never does).
    std::string count_exact(const Zdd& a) const;
    std::size_t node_count(const Zdd& a) const;
    /// Invokes fn once per set in the family, with the sorted member variables.
    void for_each_set(const Zdd& a,
                      const std::function<void(const std::vector<Var>&)>& fn) const;
    /// One arbitrary set of the family (the lexicographically first path).
    /// Precondition: a is not empty.
    std::vector<Var> any_set(const Zdd& a) const;

    /// Graphviz dump for debugging / documentation.
    std::string to_dot(const Zdd& a, const std::string& name = "zdd") const;

    /// Computed-cache statistics since construction. Each manager is
    /// single-threaded, so these are plain (non-atomic) counters; the
    /// destructor folds them into the global stats registry.
    struct CacheStats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t resizes = 0;
        [[nodiscard]] double hit_rate() const noexcept {
            const std::uint64_t total = hits + misses;
            return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
        }
    };
    [[nodiscard]] CacheStats cache_stats() const noexcept {
        return CacheStats{cache_.hits() + pair_cache_.hits(),
                          cache_.misses() + pair_cache_.misses(),
                          cache_.resizes() + pair_cache_.resizes()};
    }
    /// GC statistics since construction (also flushed by the destructor).
    struct GcStats {
        std::uint64_t runs = 0;
        std::uint64_t nodes_swept = 0;
    };
    [[nodiscard]] const GcStats& gc_stats() const noexcept { return gc_stats_; }
    /// Chain-encoding statistics since construction (also flushed by the
    /// destructor, as "zdd.chain_nodes_made" / "zdd.chain_hits").
    struct ChainStats {
        /// Arena nodes created with a compressed span (bot > top), counting
        /// free-list reuse; 0 with chain_nodes off.
        std::uint64_t nodes_made = 0;
        /// Operator recursions that took a chain-aware fast path: a
        /// multi-level equal-top step, a whole-chain shortcut answer, or a
        /// make() absorption.
        std::uint64_t hits = 0;
    };
    [[nodiscard]] const ChainStats& chain_stats() const noexcept {
        return chain_stats_;
    }
    /// Whether this manager builds chain nodes (DdOptions::chain_nodes).
    [[nodiscard]] bool chain_nodes_enabled() const noexcept {
        return chain_nodes_;
    }

    /// Folds this manager's zdd.* statistics into the global registry.
    /// Delta-based and idempotent: only the activity since the previous
    /// flush is added, so calling it mid-life and again from the destructor
    /// (which always calls it) can never double-count — manager-scoped
    /// counters, process-level roll-up.
    void flush_stats() noexcept;

    // ---- resource management --------------------------------------------------
    /// Live (allocated, non-freed) node count, excluding terminals.
    [[nodiscard]] std::size_t live_nodes() const noexcept {
        return nodes_.size() - 2 - free_.size();
    }
    /// Mark-and-sweep collection from externally referenced roots.
    /// Returns the number of nodes reclaimed.
    std::size_t gc();

    /// The resource governor this manager charges arena growth to (from
    /// DdOptions::governor; nullptr = ungoverned). Recursion roots built on
    /// top of the manager (zdd_cover, implicit_primes) poll it too.
    [[nodiscard]] Budget* governor() const noexcept { return governor_; }

    /// Reserved footprint in bytes: arena + cold arrays + unique table +
    /// computed caches, by capacity. This is the amount synced against the
    /// byte accountant (the governor's MemoryBudget) at every growth point.
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return footprint_bytes();
    }

    // Internal node accessors — used by the BDD/prime layers which share the
    // recursion style; exposed as public-but-low-level API.
    //
    // `var` packs the chain interval: top level in bits 31..8, span (bot −
    // top, ≤ 255) in bits 7..0. Plain nodes have span 0, so for them the
    // packed value is just `top << 8` and all pre-chain invariants hold.
    struct Node {
        Var var;  ///< packed (top << 8) | (bot − top)
        NodeId lo;
        NodeId hi;
    };
    /// Top level of the node's interval (the smallest variable of its sets).
    [[nodiscard]] Var var_of(NodeId n) const noexcept {
        return n < 2 ? kTermVar : nodes_[n].var >> 8;
    }
    /// Bottom (branching) level of the interval; == var_of for plain nodes.
    [[nodiscard]] Var bot_of(NodeId n) const noexcept {
        return n < 2 ? kTermVar : (nodes_[n].var >> 8) + (nodes_[n].var & 0xFFu);
    }
    /// True iff the node compresses a multi-level chain (bot > top).
    [[nodiscard]] bool is_chain(NodeId n) const noexcept {
        return n >= 2 && (nodes_[n].var & 0xFFu) != 0;
    }
    [[nodiscard]] NodeId lo_of(NodeId n) const noexcept { return nodes_[n].lo; }
    [[nodiscard]] NodeId hi_of(NodeId n) const noexcept { return nodes_[n].hi; }
    /// Hash-consed node constructor enforcing the zero-suppression rule and
    /// (with chain_nodes) the chain absorption rule.
    NodeId make(Var v, NodeId lo, NodeId hi);
    /// make() that first checks whether (lo, hi) are exactly node `a`'s
    /// children (with a.var == v): then `a` is the result, probe-free.
    /// Only valid when `a` is a plain node (chain callers use
    /// make_chain_like).
    NodeId make_like(NodeId a, Var v, NodeId lo, NodeId hi);
    /// General chain constructor for ⟨t:b, lo, hi⟩ (t ≤ b ≤ bottom of a
    /// 255-level segment). Canonicalises: zero-suppression (hi == ∅ folds the
    /// branch level into the prefix), t == b degenerates to make(), and a
    /// ∅-lo child whose hi chains on at b+1 is merged in. Every operator
    /// result goes through here, which is what keeps chain formation
    /// automatic.
    NodeId make_chain(Var t, Var b, NodeId lo, NodeId hi);

    /// Wraps a raw node id into an owning handle.
    Zdd handle(NodeId n) { return Zdd(this, n); }

private:
    friend class Zdd;

    enum class Op : std::uint8_t {
        kUnion = 1,
        kIntersect,
        kDiff,
        kProduct,
        kSupSet,
        kSubSet,
        kMaximal,
        kMinimal,
        kSubset0,
        kSubset1,
        kChange,
        kNonSubSet,
        kNonSupSet,
        kCofactors,
    };

    struct NodePair {
        NodeId lo = kEmpty;
        NodeId hi = kEmpty;
    };

    // Recursive cores (operate on NodeIds).
    NodeId union_rec(NodeId a, NodeId b);
    NodeId intersect_rec(NodeId a, NodeId b);
    NodeId diff_rec(NodeId a, NodeId b);
    NodeId product_rec(NodeId a, NodeId b);
    NodeId sup_set_rec(NodeId a, NodeId b);
    NodeId sub_set_rec(NodeId a, NodeId b);
    NodeId non_sub_set_rec(NodeId a, NodeId b);
    NodeId non_sup_set_rec(NodeId a, NodeId b);
    NodeId maximal_rec(NodeId a);
    NodeId minimal_rec(NodeId a);
    NodeId subset0_rec(NodeId a, Var v);
    NodeId subset1_rec(NodeId a, Var v);
    NodePair cofactors_rec(NodeId a, Var v);
    NodeId change_rec(NodeId a, Var v);
    NodeId drop_empty(NodeId a);
    bool contains_empty(NodeId a) const noexcept;

    /// Hash-cons with an already-packed var field (shared tail of make /
    /// make_chain): unique-table probe, free-list reuse or governed arena
    /// growth, chain counter.
    NodeId make_packed(Var var_bits, NodeId lo, NodeId hi);
    /// make_chain() that returns `a` itself when (t, b, lo, hi) are exactly
    /// its interval and children — the chain-aware analogue of make_like.
    NodeId make_chain_like(NodeId a, Var t, Var b, NodeId lo, NodeId hi);
    /// Views operand `x` of a binary operation at branch level m: c0/c1 get
    /// the sub-families without/with m. Callers pass v = the recursion's top
    /// level (var_of(x) > v means x is untouched: (x, ∅)) and m ≥ v, where
    /// m < bot_of(x) never occurs (m is min over the operand bots). A chain
    /// with bot > m views as (∅, split-at-m) — the chain-split case.
    void view_at(NodeId x, Var v, Var m, NodeId& c0, NodeId& c1);

    // External reference bookkeeping (for GC roots).
    void ref_external(NodeId n);
    void unref_external(NodeId n) noexcept;
    void maybe_gc();

    bool cache_lookup(Op op, NodeId a, NodeId b, NodeId& out) noexcept {
        return cache_.lookup(dd_cache_key(static_cast<std::uint8_t>(op), a, b), out);
    }
    void cache_store(Op op, NodeId a, NodeId b, NodeId result) {
        const std::uint64_t grew = cache_.resizes();
        cache_.store(dd_cache_key(static_cast<std::uint8_t>(op), a, b), result);
        if (mem_.governed() && cache_.resizes() != grew) sync_memory();
    }

    // ---- memory-budget accounting (DESIGN.md §13) ---------------------------
    [[nodiscard]] std::size_t footprint_bytes() const noexcept;
    /// Syncs the reserved footprint against the byte accountant, walking the
    /// in-recursion part of the degradation ladder on denial: shed + clamp
    /// the computed caches and retry (stage 1); still denied → request a
    /// boundary GC and abandon the implicit phase with a kNodeBudget
    /// ResourceError (stage 3) so the explicit fallback fires. Stage 2 (the
    /// forced collection) lives in maybe_gc(): it can only run between
    /// top-level operations.
    void sync_memory();
    /// Pops dead nodes off the arena *tail* (interior dead slots cannot
    /// move — NodeIds are addresses) and returns the capacity to the
    /// allocator when at least half of it died. Forced-GC path only.
    void trim_arena();

    Var num_vars_;
    std::vector<Node> nodes_;            // hot arena: (var, lo, hi) only
    std::vector<std::uint32_t> extref_;  // cold: external refcounts, per node
    std::vector<std::uint8_t> flags_;    // cold: kFlagFree, reusable GC mark
    std::vector<NodeId> free_;           // freed node slots available for reuse
    std::vector<NodeId> mark_stack_;     // reusable explicit GC mark stack

    UniqueTable<Node> table_;
    ComputedCache<NodeId> cache_;
    ComputedCache<NodePair> pair_cache_;  // memo for the fused cofactor pair
    GcStats gc_stats_;
    ChainStats chain_stats_;
    CacheStats cache_flushed_;  // values already rolled up by flush_stats()
    GcStats gc_flushed_;
    ChainStats chain_flushed_;

    std::size_t gc_threshold_;
    bool gc_enabled_ = true;
    bool chain_nodes_ = true;
    Budget* governor_ = nullptr;
    MemTracker mem_;           ///< byte accountant hook (null = unaccounted)
    bool gc_pending_ = false;  ///< a mid-recursion denial asked for a GC
    std::size_t gc_floor_ = 0; ///< anti-thrash floor for pressure-forced GC
};

}  // namespace ucp::zdd
