// End-to-end two-level minimisation: equivalence always, optimality when the
// exact solver is used, cost ordering between solvers, paper-style metrics.
#include <gtest/gtest.h>

#include "espresso/espresso.hpp"
#include "gen/pla_gen.hpp"
#include "solver/two_level.hpp"
#include "util/rng.hpp"

namespace {

using ucp::gen::RandomPlaOptions;
using ucp::pla::Pla;
using ucp::solver::CoverSolver;
using ucp::solver::minimize_two_level;
using ucp::solver::TwoLevelOptions;

Pla random_pla(std::uint64_t seed, std::uint32_t n = 6, std::uint32_t m = 2,
               std::uint32_t cubes = 14) {
    RandomPlaOptions opt;
    opt.num_inputs = n;
    opt.num_outputs = m;
    opt.num_cubes = cubes;
    opt.literal_prob = 0.55;
    opt.dc_fraction = 0.2;
    opt.seed = seed;
    return ucp::gen::random_pla(opt);
}

TEST(TwoLevel, ScgResultIsEquivalentAndBounded) {
    ucp::Rng seeds(91);
    for (int trial = 0; trial < 10; ++trial) {
        const Pla p = random_pla(seeds());
        const auto r = minimize_two_level(p);
        EXPECT_TRUE(r.verified) << p.name;
        EXPECT_EQ(r.cost, static_cast<ucp::cov::Cost>(r.cover.size()));
        EXPECT_LE(r.lower_bound, r.cost);
        EXPECT_GT(r.num_primes, 0u);
    }
}

TEST(TwoLevel, ExactNeverWorseThanHeuristics) {
    ucp::Rng seeds(93);
    for (int trial = 0; trial < 8; ++trial) {
        const Pla p = random_pla(seeds(), 5, 2, 10);
        TwoLevelOptions scg, exact, greedy;
        exact.cover_solver = CoverSolver::kExact;
        greedy.cover_solver = CoverSolver::kGreedy;
        const auto re = minimize_two_level(p, exact);
        const auto rs = minimize_two_level(p, scg);
        const auto rg = minimize_two_level(p, greedy);
        EXPECT_TRUE(re.verified && rs.verified && rg.verified);
        EXPECT_TRUE(re.proved_optimal);
        EXPECT_LE(re.cost, rs.cost);
        EXPECT_LE(rs.cost, rg.cost + 2);  // SCG ~ greedy or better
    }
}

TEST(TwoLevel, ScgMatchesExactOnSmallFunctions) {
    ucp::Rng seeds(95);
    int hits = 0, total = 0;
    for (int trial = 0; trial < 10; ++trial) {
        const Pla p = random_pla(seeds(), 5, 1, 10);
        TwoLevelOptions exact;
        exact.cover_solver = CoverSolver::kExact;
        const auto re = minimize_two_level(p, exact);
        const auto rs = minimize_two_level(p);
        ++total;
        if (rs.cost == re.cost) ++hits;
        EXPECT_LE(rs.cost, re.cost + 1);
    }
    EXPECT_GE(hits * 10, total * 8);  // paper: nearly always optimal
}

TEST(TwoLevel, MinimumCoverBeatsOrMatchesEspresso) {
    // The exact UCP solution over all primes is the true minimum cover; the
    // Espresso heuristic can only match or exceed it.
    ucp::Rng seeds(97);
    for (int trial = 0; trial < 8; ++trial) {
        const Pla p = random_pla(seeds(), 5, 2, 12);
        TwoLevelOptions exact;
        exact.cover_solver = CoverSolver::kExact;
        const auto re = minimize_two_level(p, exact);
        ASSERT_TRUE(re.proved_optimal);
        const auto esp = ucp::esp::espresso(p);
        EXPECT_LE(re.cost, static_cast<ucp::cov::Cost>(esp.cover.size()));
    }
}

TEST(TwoLevel, KnownFunctions) {
    // Majority-of-5: minimum SOP has C(5,3) = 10 products.
    const auto maj = minimize_two_level(ucp::gen::majority_pla(5),
                                        [] {
                                            TwoLevelOptions o;
                                            o.cover_solver = CoverSolver::kExact;
                                            return o;
                                        }());
    EXPECT_TRUE(maj.verified);
    EXPECT_EQ(maj.cost, 10);

    // Parity-of-5: no merging possible, 16 minterms.
    const auto par = minimize_two_level(ucp::gen::parity_pla(5));
    EXPECT_TRUE(par.verified);
    EXPECT_EQ(par.cost, 16);
    EXPECT_TRUE(par.proved_optimal);

    // 4-way mux: classical minimum is 4 products.
    TwoLevelOptions exact;
    exact.cover_solver = CoverSolver::kExact;
    const auto mux = minimize_two_level(ucp::gen::mux_pla(2), exact);
    EXPECT_TRUE(mux.verified);
    EXPECT_EQ(mux.cost, 4);
}

TEST(TwoLevel, MultiOutputSharingIsExploited) {
    // Two identical outputs: one product set serves both, so the minimised
    // cover should not double.
    const ucp::pla::CubeSpace s{3, 2};
    Pla p;
    p.on = ucp::pla::Cover::from_strings(
        s, {{"11-", "11"}, {"0-1", "11"}});
    p.dc = ucp::pla::Cover(s);
    p.off = ucp::pla::Cover(s);
    TwoLevelOptions exact;
    exact.cover_solver = CoverSolver::kExact;
    const auto r = minimize_two_level(p, exact);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.cost, 2);
    for (const auto& c : r.cover) {
        EXPECT_TRUE(c.out(s, 0));
        EXPECT_TRUE(c.out(s, 1));
    }
}

TEST(TwoLevel, ImplicitExactMatchesBranchAndBound) {
    ucp::Rng seeds(99);
    for (int trial = 0; trial < 8; ++trial) {
        const Pla p = random_pla(seeds(), 5, 2, 10);
        TwoLevelOptions exact, implicit;
        exact.cover_solver = CoverSolver::kExact;
        implicit.cover_solver = CoverSolver::kImplicitExact;
        const auto re = minimize_two_level(p, exact);
        const auto ri = minimize_two_level(p, implicit);
        ASSERT_TRUE(re.proved_optimal && ri.proved_optimal);
        EXPECT_TRUE(ri.verified);
        EXPECT_EQ(ri.cost, re.cost) << p.name;
        EXPECT_EQ(ri.lower_bound, ri.cost);
    }
}

TEST(TwoLevel, TimingsPopulated) {
    const auto r = minimize_two_level(random_pla(3));
    EXPECT_GE(r.cyclic_core_seconds, 0.0);
    EXPECT_GE(r.total_seconds, r.cyclic_core_seconds);
}

}  // namespace
