#include "matrix/reductions.hpp"

#include <algorithm>
#include <numeric>

#include "kernels/sparse_ops.hpp"
#include "matrix/bit_matrix.hpp"
#include "util/stats.hpp"
#include "util/trace.hpp"

namespace ucp::cov {

namespace {

constexpr Index kInvalid = ~Index{0};

/// Dirty queues with O(1) membership dedup. A row entering the row queue
/// feeds both the essential recheck and the row-dominance recheck (the two
/// tests that can newly fire when a row loses a column); a column entering
/// the column queue feeds the column-dominance recheck.
struct Worklists {
    std::vector<Index> ess, rowdom, coldom;
    std::vector<char> ess_in, rowdom_in, coldom_in;

    void init(Index rows, Index cols) {
        ess_in.assign(rows, 0);
        rowdom_in.assign(rows, 0);
        coldom_in.assign(cols, 0);
        ess.clear();
        rowdom.clear();
        coldom.clear();
    }
    void dirty_row(Index i) {
        if (ess_in[i] == 0) {
            ess_in[i] = 1;
            ess.push_back(i);
        }
        if (rowdom_in[i] == 0) {
            rowdom_in[i] = 1;
            rowdom.push_back(i);
        }
    }
    void dirty_col(Index j) {
        if (coldom_in[j] == 0) {
            coldom_in[j] = 1;
            coldom.push_back(j);
        }
    }
};

/// Is the live column set of row `a` a subset of row `b`'s? Iterates `a`'s
/// base adjacency skipping dead columns; membership in `b` can be tested on
/// the unfiltered base list because element liveness is global (a column is
/// alive for every row or for none).
bool row_subset(const SubMatrix& v, Index a, Index b) {
    const IndexSpan bs = v.row(b);
    const Index* it = bs.begin();
    for (const Index x : v.row(a)) {
        if (!v.col_alive(x)) continue;
        it = std::lower_bound(it, bs.end(), x);
        if (it == bs.end() || *it != x) return false;
        ++it;
    }
    return true;
}

bool col_subset(const SubMatrix& v, Index a, Index b) {
    const IndexSpan bs = v.col(b);
    const Index* it = bs.begin();
    for (const Index x : v.col(a)) {
        if (!v.row_alive(x)) continue;
        it = std::lower_bound(it, bs.end(), x);
        if (it == bs.end() || *it != x) return false;
        ++it;
    }
    return true;
}

/// Worklist-driven reduction fixpoint over a live view. Seeding every alive
/// row/column reproduces the classical full-pass reducer exactly (same
/// essential order, same removal sets, pass for pass); seeding only the
/// dirtied entities skips the quadratic rescans of everything untouched.
///
/// Why dirty-only is enough: within a pass both dominance scans work on a
/// frozen snapshot (marks are applied after the scan), and a dominance pair
/// can only *newly* hold when the subset side lost an element that the
/// superset side never had — which is exactly when the subset side got
/// dirtied. A clean subset side re-tested against any still-alive partner
/// either already fired in the pass that last scanned it, or was skipped by
/// a tie-break that still applies (equal sets shrink in lockstep because
/// removals hit every adjacency list uniformly).
void run_fixpoint(SubMatrix& v, Worklists& q, const ReduceOptions& opt,
                  bool use_bits, InplaceReduceResult& res) {
    static stats::Counter& c_skips = stats::counter("reduce.dominance_skips");

    const Index R = v.num_rows();
    const Index C = v.num_cols();
    res.used_bitset_kernel = use_bits;

    // Bit-packed mirrors of the live adjacency, built once per call and then
    // maintained incrementally (clear one bit per removed incidence) instead
    // of being rebuilt every pass.
    BitMatrix row_bits, col_bits;
    if (use_bits) {
        row_bits.reset(R, C);
        col_bits.reset(C, R);
        for (Index i = 0; i < R; ++i)
            if (v.row_alive(i))
                row_bits.assign_row_filtered(i, v.row(i), v.col_alive_data());
        for (Index j = 0; j < C; ++j)
            if (v.col_alive(j))
                col_bits.assign_row_filtered(j, v.col(j), v.row_alive_data());
    }

    std::vector<Index> sweep, marked, cand;
    std::vector<char> to_remove_r, to_remove_c, cand_hit;

    while (true) {
        const bool ess_work = opt.essential && !q.ess.empty();
        const bool rd_work = opt.row_dominance && !q.rowdom.empty();
        const bool cd_work = opt.col_dominance && !q.coldom.empty();
        if (!ess_work && !rd_work && !cd_work) break;
        TRACE_SPAN_ITER("reduce.pass");
        ++res.passes;

        // --- essential columns -----------------------------------------------
        // A single ascending sweep suffices: fixing a column kills every row
        // it covers, so no surviving row's live count drops — essentials
        // never cascade inside the phase.
        if (ess_work) {
            sweep.assign(q.ess.begin(), q.ess.end());
            q.ess.clear();
            std::sort(sweep.begin(), sweep.end());
            for (const Index i : sweep) {
                q.ess_in[i] = 0;
                if (!v.row_alive(i)) continue;
                UCP_ASSERT(v.live_row_size(i) >= 1);  // empty row ⇒ infeasible
                if (v.live_row_size(i) != 1) continue;
                Index last = kInvalid;
                for (const Index j : v.row(i))
                    if (v.col_alive(j)) {
                        last = j;
                        break;
                    }
                UCP_ASSERT(last != kInvalid);
                res.essential_cols.push_back(last);
                res.fixed_cost += v.cost(last);
                v.fix_col(
                    last, [](Index) {},
                    [&](Index ik, Index j2) {
                        q.dirty_col(j2);
                        if (use_bits) col_bits.clear(j2, ik);
                    });
            }
        }

        // --- row dominance: drop rows whose column set is a superset ---------
        if (opt.row_dominance && !q.rowdom.empty()) {
            if (v.num_live_rows() > opt.max_dominance_rows) {
                // Pass skipped: the view may retain dominated rows (surfaced
                // via dominance_skipped). The pending dirt is dropped — the
                // classical reducer abandons the unscanned work the same way.
                res.dominance_skipped = true;
                c_skips.add();
                for (const Index i : q.rowdom) q.rowdom_in[i] = 0;
                q.rowdom.clear();
            } else {
                sweep.assign(q.rowdom.begin(), q.rowdom.end());
                q.rowdom.clear();
                std::sort(sweep.begin(), sweep.end());
                to_remove_r.assign(R, 0);
                marked.clear();
                for (const Index k : sweep) {
                    q.rowdom_in[k] = 0;
                    if (!v.row_alive(k) || to_remove_r[k] != 0) continue;
                    // Candidates that could be dominated BY k (supersets of
                    // k's columns) all appear in the column lists of k's
                    // columns; scan the cheapest one. Branchless min update:
                    // strict < keeps the first index on ties, exactly like
                    // the short-circuit original, without the unpredictable
                    // branch per span element.
                    Index probe = kInvalid;
                    Index probe_len = ~Index{0};
                    for (const Index j : v.row(k)) {
                        const Index len = v.live_col_size(j);
                        const bool better = v.col_alive(j) && len < probe_len;
                        probe = better ? j : probe;
                        probe_len = better ? len : probe_len;
                    }
                    UCP_ASSERT(probe != kInvalid);
                    if (use_bits) {
                        // Collect the candidates surviving the cheap filters,
                        // then run the whole probe scan through one batched
                        // subset call. Marks are applied after the scan in
                        // the original too (to_remove only dedups), so the
                        // fired set is identical. The filter predicate is
                        // evaluated branchlessly (candidate pass rates hover
                        // near 50% on dense matrices, the worst case for the
                        // branch predictor) with an unconditional write +
                        // conditional advance.
                        const IndexSpan pc = v.col(probe);
                        const Index sk = v.live_row_size(k);
                        cand.resize(pc.size());
                        std::size_t nc = 0;
                        for (const Index i : pc) {
                            const Index li = v.live_row_size(i);
                            const unsigned ok =
                                static_cast<unsigned>(v.row_alive(i)) &
                                static_cast<unsigned>(to_remove_r[i] == 0) &
                                static_cast<unsigned>(i != k) &
                                (static_cast<unsigned>(li > sk) |
                                 (static_cast<unsigned>(li == sk) &
                                  static_cast<unsigned>(i > k)));
                            cand[nc] = i;
                            nc += ok;
                        }
                        cand.resize(nc);
                        cand_hit.assign(cand.size(), 0);
                        kern::subset_batch(row_bits.words_data(),
                                           row_bits.words_per_row(),
                                           row_bits.row_words(k), cand.data(),
                                           cand.size(), cand_hit.data());
                        for (std::size_t t = 0; t < cand.size(); ++t) {
                            if (cand_hit[t] == 0) continue;
                            to_remove_r[cand[t]] = 1;
                            marked.push_back(cand[t]);
                            ++res.rows_removed_dominance;
                        }
                    } else {
                        for (const Index i : v.col(probe)) {
                            if (!v.row_alive(i)) continue;
                            if (i == k || to_remove_r[i] != 0) continue;
                            if (v.live_row_size(i) < v.live_row_size(k))
                                continue;
                            if (v.live_row_size(i) == v.live_row_size(k) &&
                                i < k)
                                continue;  // equal sets: keep the smaller index
                            if (row_subset(v, k, i)) {
                                to_remove_r[i] = 1;
                                marked.push_back(i);
                                ++res.rows_removed_dominance;
                            }
                        }
                    }
                }
                for (const Index i : marked)
                    v.kill_row(i, [&](Index j) {
                        q.dirty_col(j);
                        if (use_bits) col_bits.clear(j, i);
                    });
            }
        }

        // --- column dominance: drop columns covered by a cheaper/equal peer --
        if (opt.col_dominance && !q.coldom.empty()) {
            if (v.num_live_cols() > opt.max_dominance_cols) {
                res.dominance_skipped = true;
                c_skips.add();
                for (const Index j : q.coldom) q.coldom_in[j] = 0;
                q.coldom.clear();
            } else {
                sweep.assign(q.coldom.begin(), q.coldom.end());
                q.coldom.clear();
                std::sort(sweep.begin(), sweep.end());
                to_remove_c.assign(C, 0);
                marked.clear();
                for (const Index j : sweep) {
                    q.coldom_in[j] = 0;
                    if (!v.col_alive(j) || to_remove_c[j] != 0) continue;
                    if (v.live_col_size(j) == 0) {
                        // Covers nothing any more — trivially dominated.
                        to_remove_c[j] = 1;
                        marked.push_back(j);
                        ++res.cols_removed_dominance;
                        continue;
                    }
                    // A dominator of j must appear in every row of j; scan
                    // the shortest row. Branchless min update (see the row
                    // dominance probe above for the equivalence argument).
                    Index probe = kInvalid;
                    Index probe_len = ~Index{0};
                    for (const Index i : v.col(j)) {
                        const Index len = v.live_row_size(i);
                        const bool better = v.row_alive(i) && len < probe_len;
                        probe = better ? i : probe;
                        probe_len = better ? len : probe_len;
                    }
                    UCP_ASSERT(probe != kInvalid);
                    if (use_bits) {
                        // Same candidate order as the sequential scan; the
                        // kernel stops at the first dominator, so stopping
                        // is equivalent to the original break. Branchless
                        // filter, as in row dominance.
                        const IndexSpan pr = v.row(probe);
                        const Index sj = v.live_col_size(j);
                        const Cost cj = v.cost(j);
                        cand.resize(pr.size());
                        std::size_t nc = 0;
                        for (const Index k : pr) {
                            const Index lk = v.live_col_size(k);
                            const Cost ck = v.cost(k);
                            const unsigned ok =
                                static_cast<unsigned>(v.col_alive(k)) &
                                static_cast<unsigned>(k != j) &
                                static_cast<unsigned>(to_remove_c[k] == 0) &
                                static_cast<unsigned>(ck <= cj) &
                                (static_cast<unsigned>(lk > sj) |
                                 (static_cast<unsigned>(lk == sj) &
                                  ~(static_cast<unsigned>(ck == cj) &
                                    static_cast<unsigned>(k > j)) &
                                  1u));
                            cand[nc] = k;
                            nc += ok;
                        }
                        cand.resize(nc);
                        const Index hit = kern::subset_first(
                            col_bits.words_data(), col_bits.words_per_row(),
                            col_bits.row_words(j), cand.data(), cand.size());
                        if (hit < cand.size()) {
                            to_remove_c[j] = 1;
                            marked.push_back(j);
                            ++res.cols_removed_dominance;
                        }
                    } else {
                        for (const Index k : v.row(probe)) {
                            if (!v.col_alive(k)) continue;
                            if (k == j || to_remove_c[k] != 0) continue;
                            if (v.cost(k) > v.cost(j)) continue;
                            if (v.live_col_size(k) < v.live_col_size(j))
                                continue;
                            if (v.live_col_size(k) == v.live_col_size(j) &&
                                v.cost(k) == v.cost(j) && k > j)
                                continue;  // symmetric pair: keep smaller index
                            if (col_subset(v, j, k)) {
                                to_remove_c[j] = 1;
                                marked.push_back(j);
                                ++res.cols_removed_dominance;
                                break;
                            }
                        }
                    }
                }
                for (const Index j : marked)
                    v.remove_col(j, [&](Index i) {
                        q.dirty_row(i);
                        if (use_bits) row_bits.clear(i, j);
                    });
            }
        }
    }
}

}  // namespace

InplaceReduceResult reduce_to_view(const CoverMatrix& m, SubMatrix& v,
                                   const std::vector<Index>& fixed,
                                   const ReduceOptions& opt) {
    static stats::Counter& c_calls = stats::counter("reduce.calls");
    static stats::Counter& c_passes = stats::counter("reduce.passes");
    static stats::Counter& c_rows_dom = stats::counter("reduce.rows_removed_dominance");
    static stats::Counter& c_cols_dom = stats::counter("reduce.cols_removed_dominance");
    static stats::Counter& c_bitset = stats::counter("reduce.bitset_kernel_calls");
    const stats::ScopedTimer phase_timer("reduce.seconds");
    TRACE_SPAN("reduce");
    c_calls.add();

    const Index R = m.num_rows();
    const Index C = m.num_cols();

    const bool use_bits =
        opt.use_bitset == BitsetMode::kOn ||
        (opt.use_bitset == BitsetMode::kAuto && R > 0 && C > 0 &&
         m.density() >= opt.bitset_density_threshold);
    if (use_bits) c_bitset.add();

    v.reset(m);
    for (const Index j : fixed) {
        UCP_REQUIRE(j < C, "fixed column out of range");
        if (!v.col_alive(j)) continue;
        v.fix_col(j, [](Index) {}, [](Index, Index) {});
    }

    // Everything alive starts dirty: the first pass is a full pass, exactly
    // like the classical reducer; later passes only recheck what changed.
    Worklists q;
    q.init(R, C);
    for (Index i = 0; i < R; ++i)
        if (v.row_alive(i)) q.dirty_row(i);
    for (Index j = 0; j < C; ++j)
        if (v.col_alive(j)) q.dirty_col(j);

    InplaceReduceResult in;
    run_fixpoint(v, q, opt, use_bits, in);

    // --- extract the cyclic core --------------------------------------------
    // Drop surviving columns that no longer cover any alive row; columns that
    // were empty in the *input* are kept (matching the classical extraction,
    // which only prunes columns that lost their rows during reduction).
    for (Index j = 0; j < C; ++j)
        if (v.col_alive(j) && !m.col(j).empty() && v.live_col_size(j) == 0)
            v.drop_dead_col(j);

    c_passes.add(in.passes);
    c_rows_dom.add(in.rows_removed_dominance);
    c_cols_dom.add(in.cols_removed_dominance);
    return in;
}

ReduceResult reduce(const CoverMatrix& m, const std::vector<Index>& fixed,
                    const ReduceOptions& opt) {
    SubMatrix v;
    InplaceReduceResult in = reduce_to_view(m, v, fixed, opt);

    ReduceResult result;
    result.essential_cols = std::move(in.essential_cols);
    result.fixed_cost = in.fixed_cost;
    result.rows_removed_dominance = in.rows_removed_dominance;
    result.cols_removed_dominance = in.cols_removed_dominance;
    result.passes = in.passes;
    result.dominance_skipped = in.dominance_skipped;
    result.used_bitset_kernel = in.used_bitset_kernel;
    result.core = v.compact(result.core_col_map, result.core_row_map);
    return result;
}

InplaceReduceResult reduce_inplace(SubMatrix& view, const ReduceDirt& dirt,
                                   const ReduceOptions& opt) {
    static stats::Counter& c_calls = stats::counter("reduce.inplace_calls");
    static stats::Counter& c_bitset = stats::counter("reduce.bitset_kernel_calls");
    const stats::ScopedTimer phase_timer("reduce.seconds");
    TRACE_SPAN_ITER("reduce.inplace");
    c_calls.add();

    const Index lr = view.num_live_rows();
    const Index lc = view.num_live_cols();
    double density = 0.0;
    if (lr > 0 && lc > 0) {
        const std::uint64_t live_entries = kern::sum_u32_masked(
            view.live_row_size_data(), view.row_alive_data(), view.num_rows());
        density = static_cast<double>(live_entries) /
                  (static_cast<double>(lr) * static_cast<double>(lc));
    }
    const bool use_bits =
        opt.use_bitset == BitsetMode::kOn ||
        (opt.use_bitset == BitsetMode::kAuto && lr > 0 && lc > 0 &&
         density >= opt.bitset_density_threshold);
    if (use_bits) c_bitset.add();

    Worklists q;
    q.init(view.num_rows(), view.num_cols());
    for (const Index i : dirt.rows)
        if (view.row_alive(i)) q.dirty_row(i);
    for (const Index j : dirt.cols)
        if (view.col_alive(j)) q.dirty_col(j);

    InplaceReduceResult res;
    run_fixpoint(view, q, opt, use_bits, res);
    return res;
}

std::vector<Partition> partition_blocks(const CoverMatrix& m) {
    const Index R = m.num_rows();
    const Index C = m.num_cols();
    constexpr Index kNone = ~Index{0};
    std::vector<Index> row_block(R, kNone), col_block(C, kNone);

    Index num_blocks = 0;
    for (Index start = 0; start < R; ++start) {
        if (row_block[start] != kNone) continue;
        const Index b = num_blocks++;
        // BFS over the bipartite incidence graph.
        std::vector<Index> queue{start};
        row_block[start] = b;
        while (!queue.empty()) {
            const Index i = queue.back();
            queue.pop_back();
            for (const Index j : m.row(i)) {
                if (col_block[j] != kNone) continue;
                col_block[j] = b;
                for (const Index i2 : m.col(j)) {
                    if (row_block[i2] != kNone) continue;
                    row_block[i2] = b;
                    queue.push_back(i2);
                }
            }
        }
    }

    std::vector<Partition> blocks(num_blocks);
    std::vector<std::vector<std::vector<Index>>> rows(num_blocks);
    std::vector<std::vector<Cost>> costs(num_blocks);
    std::vector<Index> col_new(C, 0);
    for (Index j = 0; j < C; ++j) {
        const Index b = col_block[j];
        if (b == kNone) continue;  // column covers nothing: drop
        col_new[j] = static_cast<Index>(blocks[b].col_map.size());
        blocks[b].col_map.push_back(j);
        costs[b].push_back(m.cost(j));
    }
    for (Index i = 0; i < R; ++i) {
        const Index b = row_block[i];
        std::vector<Index> r;
        r.reserve(m.row(i).size());
        for (const Index j : m.row(i)) r.push_back(col_new[j]);
        rows[b].push_back(std::move(r));
        blocks[b].row_map.push_back(i);
    }
    for (Index b = 0; b < num_blocks; ++b) {
        blocks[b].matrix = CoverMatrix::from_rows(
            static_cast<Index>(blocks[b].col_map.size()), std::move(rows[b]),
            std::move(costs[b]));
    }
    return blocks;
}

}  // namespace ucp::cov
