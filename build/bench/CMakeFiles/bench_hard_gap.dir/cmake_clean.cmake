file(REMOVE_RECURSE
  "CMakeFiles/bench_hard_gap.dir/bench_hard_gap.cpp.o"
  "CMakeFiles/bench_hard_gap.dir/bench_hard_gap.cpp.o.d"
  "bench_hard_gap"
  "bench_hard_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hard_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
