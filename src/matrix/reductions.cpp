#include "matrix/reductions.hpp"

#include <algorithm>
#include <numeric>

#include "matrix/bit_matrix.hpp"
#include "util/stats.hpp"

namespace ucp::cov {

namespace {

/// Is `small` a subset of `big`? Both sorted ascending.
bool subset_of(const std::vector<Index>& small, const std::vector<Index>& big) {
    if (small.size() > big.size()) return false;
    auto it = big.begin();
    for (const Index x : small) {
        it = std::lower_bound(it, big.end(), x);
        if (it == big.end() || *it != x) return false;
        ++it;
    }
    return true;
}

}  // namespace

ReduceResult reduce(const CoverMatrix& m, const std::vector<Index>& fixed,
                    const ReduceOptions& opt) {
    static stats::Counter& c_calls = stats::counter("reduce.calls");
    static stats::Counter& c_passes = stats::counter("reduce.passes");
    static stats::Counter& c_rows_dom = stats::counter("reduce.rows_removed_dominance");
    static stats::Counter& c_cols_dom = stats::counter("reduce.cols_removed_dominance");
    static stats::Counter& c_skips = stats::counter("reduce.dominance_skips");
    static stats::Counter& c_bitset = stats::counter("reduce.bitset_kernel_calls");
    const stats::ScopedTimer phase_timer("reduce.seconds");
    c_calls.add();

    const Index R = m.num_rows();
    const Index C = m.num_cols();
    std::vector<bool> row_alive(R, true), col_alive(C, true);

    ReduceResult result;
    result.used_bitset_kernel =
        opt.use_bitset == BitsetMode::kOn ||
        (opt.use_bitset == BitsetMode::kAuto && R > 0 && C > 0 &&
         m.density() >= opt.bitset_density_threshold);
    if (result.used_bitset_kernel) c_bitset.add();

    auto remove_rows_covered_by = [&](Index j) {
        for (const Index i : m.col(j))
            row_alive[i] = false;
    };

    for (const Index j : fixed) {
        UCP_REQUIRE(j < C, "fixed column out of range");
        if (!col_alive[j]) continue;
        col_alive[j] = false;
        remove_rows_covered_by(j);
    }

    // Filtered adjacency snapshots, rebuilt when marked dirty. The bit-packed
    // mirrors (row → column bitset, column → row bitset) are only maintained
    // when the word-wise dominance kernel is active.
    std::vector<std::vector<Index>> rcols(R), crows(C);
    BitMatrix row_bits, col_bits;
    auto rebuild = [&] {
        for (Index i = 0; i < R; ++i) {
            rcols[i].clear();
            if (!row_alive[i]) continue;
            for (const Index j : m.row(i))
                if (col_alive[j]) rcols[i].push_back(j);
        }
        for (Index j = 0; j < C; ++j) {
            crows[j].clear();
            if (!col_alive[j]) continue;
            for (const Index i : m.col(j))
                if (row_alive[i]) crows[j].push_back(i);
        }
        if (result.used_bitset_kernel) {
            row_bits.reset(R, C);
            col_bits.reset(C, R);
            for (Index i = 0; i < R; ++i) row_bits.assign_row(i, rcols[i]);
            for (Index j = 0; j < C; ++j) col_bits.assign_row(j, crows[j]);
        }
    };
    const auto row_subset = [&](Index a, Index b) {
        return result.used_bitset_kernel ? row_bits.subset(a, b)
                                         : subset_of(rcols[a], rcols[b]);
    };
    const auto col_subset = [&](Index a, Index b) {
        return result.used_bitset_kernel ? col_bits.subset(a, b)
                                         : subset_of(crows[a], crows[b]);
    };

    bool changed = true;
    while (changed) {
        changed = false;
        ++result.passes;
        rebuild();

        // --- essential columns (to a fixed point, cheap) ---------------------
        if (opt.essential) {
            bool ess_changed = true;
            while (ess_changed) {
                ess_changed = false;
                for (Index i = 0; i < R; ++i) {
                    if (!row_alive[i]) continue;
                    Index last = 0, count = 0;
                    for (const Index j : m.row(i)) {
                        if (col_alive[j]) {
                            last = j;
                            if (++count > 1) break;
                        }
                    }
                    UCP_ASSERT(count >= 1);  // empty row ⇒ infeasible input
                    if (count == 1) {
                        result.essential_cols.push_back(last);
                        result.fixed_cost += m.cost(last);
                        col_alive[last] = false;
                        remove_rows_covered_by(last);
                        ess_changed = true;
                        changed = true;
                    }
                }
            }
            if (changed) rebuild();
        }

        // --- row dominance: drop rows whose column set is a superset ---------
        const Index alive_rows = static_cast<Index>(
            std::count(row_alive.begin(), row_alive.end(), true));
        if (opt.row_dominance && alive_rows > opt.max_dominance_rows) {
            // Pass skipped: the core may retain dominated rows. Surfaced via
            // ReduceResult::dominance_skipped and the stats counter so large
            // instances no longer silently degrade.
            result.dominance_skipped = true;
            c_skips.add();
        }
        if (opt.row_dominance && alive_rows <= opt.max_dominance_rows) {
            std::vector<bool> to_remove(R, false);
            for (Index k = 0; k < R; ++k) {
                if (!row_alive[k] || to_remove[k]) continue;
                // Candidates that could be dominated BY k (supersets of k's
                // columns) all appear in the column lists of k's columns; scan
                // the cheapest one.
                Index probe = rcols[k][0];
                for (const Index j : rcols[k])
                    if (crows[j].size() < crows[probe].size()) probe = j;
                for (const Index i : crows[probe]) {
                    if (i == k || !row_alive[i] || to_remove[i]) continue;
                    if (rcols[i].size() < rcols[k].size()) continue;
                    if (rcols[i].size() == rcols[k].size() && i < k)
                        continue;  // equal sets: keep the smaller index
                    if (row_subset(k, i)) {
                        to_remove[i] = true;
                        ++result.rows_removed_dominance;
                        changed = true;
                    }
                }
            }
            bool any = false;
            for (Index i = 0; i < R; ++i)
                if (to_remove[i]) {
                    row_alive[i] = false;
                    any = true;
                }
            if (any) rebuild();
        }

        // --- column dominance: drop columns covered by a cheaper/equal peer ---
        const Index alive_cols = static_cast<Index>(
            std::count(col_alive.begin(), col_alive.end(), true));
        if (opt.col_dominance && alive_cols > opt.max_dominance_cols) {
            result.dominance_skipped = true;
            c_skips.add();
        }
        if (opt.col_dominance && alive_cols <= opt.max_dominance_cols) {
            std::vector<bool> to_remove(C, false);
            for (Index j = 0; j < C; ++j) {
                if (!col_alive[j] || to_remove[j]) continue;
                if (crows[j].empty()) {
                    // Covers nothing any more — trivially dominated.
                    to_remove[j] = true;
                    ++result.cols_removed_dominance;
                    changed = true;
                    continue;
                }
                // A dominator of j must appear in every row of j; scan the
                // shortest row.
                Index probe = crows[j][0];
                for (const Index i : crows[j])
                    if (rcols[i].size() < rcols[probe].size()) probe = i;
                for (const Index k : rcols[probe]) {
                    if (k == j || !col_alive[k] || to_remove[k]) continue;
                    if (m.cost(k) > m.cost(j)) continue;
                    if (crows[k].size() < crows[j].size()) continue;
                    if (crows[k].size() == crows[j].size() && m.cost(k) == m.cost(j) &&
                        k > j)
                        continue;  // symmetric pair: keep the smaller index
                    if (col_subset(j, k)) {
                        to_remove[j] = true;
                        ++result.cols_removed_dominance;
                        changed = true;
                        break;
                    }
                }
            }
            bool any = false;
            for (Index j = 0; j < C; ++j)
                if (to_remove[j]) {
                    col_alive[j] = false;
                    any = true;
                }
            if (any) rebuild();
        }
    }

    // --- extract the cyclic core ------------------------------------------------
    std::vector<Index> col_new(C, 0);
    for (Index j = 0; j < C; ++j) {
        if (col_alive[j] && !m.col(j).empty()) {
            // Keep only columns that still cover some alive row.
            bool useful = false;
            for (const Index i : m.col(j))
                if (row_alive[i]) {
                    useful = true;
                    break;
                }
            if (!useful) col_alive[j] = false;
        }
    }
    for (Index j = 0; j < C; ++j) {
        if (col_alive[j]) {
            col_new[j] = static_cast<Index>(result.core_col_map.size());
            result.core_col_map.push_back(j);
        }
    }
    std::vector<std::vector<Index>> core_rows;
    std::vector<Cost> core_costs;
    core_costs.reserve(result.core_col_map.size());
    for (const Index j : result.core_col_map) core_costs.push_back(m.cost(j));
    for (Index i = 0; i < R; ++i) {
        if (!row_alive[i]) continue;
        std::vector<Index> r;
        for (const Index j : m.row(i))
            if (col_alive[j]) r.push_back(col_new[j]);
        UCP_ASSERT(!r.empty());
        core_rows.push_back(std::move(r));
        result.core_row_map.push_back(i);
    }
    result.core = CoverMatrix::from_rows(
        static_cast<Index>(result.core_col_map.size()), std::move(core_rows),
        std::move(core_costs));
    c_passes.add(result.passes);
    c_rows_dom.add(result.rows_removed_dominance);
    c_cols_dom.add(result.cols_removed_dominance);
    return result;
}

std::vector<Partition> partition_blocks(const CoverMatrix& m) {
    const Index R = m.num_rows();
    const Index C = m.num_cols();
    constexpr Index kNone = ~Index{0};
    std::vector<Index> row_block(R, kNone), col_block(C, kNone);

    Index num_blocks = 0;
    for (Index start = 0; start < R; ++start) {
        if (row_block[start] != kNone) continue;
        const Index b = num_blocks++;
        // BFS over the bipartite incidence graph.
        std::vector<Index> queue{start};
        row_block[start] = b;
        while (!queue.empty()) {
            const Index i = queue.back();
            queue.pop_back();
            for (const Index j : m.row(i)) {
                if (col_block[j] != kNone) continue;
                col_block[j] = b;
                for (const Index i2 : m.col(j)) {
                    if (row_block[i2] != kNone) continue;
                    row_block[i2] = b;
                    queue.push_back(i2);
                }
            }
        }
    }

    std::vector<Partition> blocks(num_blocks);
    std::vector<std::vector<std::vector<Index>>> rows(num_blocks);
    std::vector<std::vector<Cost>> costs(num_blocks);
    std::vector<Index> col_new(C, 0);
    for (Index j = 0; j < C; ++j) {
        const Index b = col_block[j];
        if (b == kNone) continue;  // column covers nothing: drop
        col_new[j] = static_cast<Index>(blocks[b].col_map.size());
        blocks[b].col_map.push_back(j);
        costs[b].push_back(m.cost(j));
    }
    for (Index i = 0; i < R; ++i) {
        const Index b = row_block[i];
        std::vector<Index> r;
        r.reserve(m.row(i).size());
        for (const Index j : m.row(i)) r.push_back(col_new[j]);
        rows[b].push_back(std::move(r));
        blocks[b].row_map.push_back(i);
    }
    for (Index b = 0; b < num_blocks; ++b) {
        blocks[b].matrix = CoverMatrix::from_rows(
            static_cast<Index>(blocks[b].col_map.size()), std::move(rows[b]),
            std::move(costs[b]));
    }
    return blocks;
}

}  // namespace ucp::cov
