#include "util/fault.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace ucp::fault {

Spec parse_spec(const char* text) noexcept {
    if (text == nullptr) return {};
    const std::string_view sv(text);
    const auto colon = sv.find(':');
    if (colon == std::string_view::npos) return {};

    const std::string_view kind = sv.substr(0, colon);
    const std::string_view count = sv.substr(colon + 1);

    Spec spec;
    if (kind == "alloc") {
        spec.kind = Kind::kAlloc;
    } else if (kind == "deadline") {
        spec.kind = Kind::kDeadline;
    } else if (kind == "cancel") {
        spec.kind = Kind::kCancel;
    } else {
        return {};
    }

    std::uint64_t n = 0;
    const auto [ptr, ec] =
        std::from_chars(count.data(), count.data() + count.size(), n);
    if (ec != std::errc{} || ptr != count.data() + count.size() || n == 0)
        return {};
    spec.at = n;
    return spec;
}

Spec spec_from_env() noexcept {
    return parse_spec(std::getenv("UCP_FAULT"));
}

}  // namespace ucp::fault
